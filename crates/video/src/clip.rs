//! Rendered video clips with per-frame ground truth.
//!
//! A [`VideoClip`] is the unit the pipelines consume: a sequence of
//! [`Frame`]s, each carrying its pixel image (for the *real* tracker) and its
//! ground-truth object list (which the *simulated* detector perturbs and the
//! metrics compare against).

use crate::object::{ObjectClass, ObjectId};
use crate::render::Renderer;
use crate::scenario::ScenarioSpec;
use crate::world::World;
use adavp_vision::geometry::BoundingBox;
use adavp_vision::image::GrayImage;
use serde::{Deserialize, Serialize};

/// Minimum fraction of an object that must be inside the frame for it to
/// count as ground truth.
pub const MIN_VISIBLE_FRACTION: f32 = 0.25;
/// Minimum on-screen area (px²) for a ground-truth object.
pub const MIN_VISIBLE_AREA: f32 = 120.0;

/// One object in a frame's ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthObject {
    /// Identity of the world object (stable across frames).
    pub id: ObjectId,
    /// True class label.
    pub class: ObjectClass,
    /// Bounding box clipped to the frame, `(left, top, width, height)`.
    pub bbox: BoundingBox,
    /// Fraction of the object's full box that is on screen, in `(0, 1]`.
    pub visible_fraction: f32,
    /// Screen-space speed relative to the camera, in px/frame — the motion
    /// the tracker (and the detector's motion-blur confidence penalty)
    /// actually sees.
    pub speed: f32,
}

/// One captured frame: pixels plus ground truth.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index within the clip (0-based).
    pub index: u64,
    /// Capture timestamp in milliseconds since clip start.
    pub timestamp_ms: f64,
    /// Rendered grayscale image.
    pub image: GrayImage,
    /// Objects visible in this frame.
    pub ground_truth: Vec<GroundTruthObject>,
}

/// A generated video clip.
///
/// # Example
///
/// ```
/// use adavp_video::scenario::Scenario;
/// use adavp_video::clip::VideoClip;
/// let clip = VideoClip::generate("hw", &Scenario::Highway.spec(), 1, 10);
/// assert_eq!(clip.len(), 10);
/// assert!((clip.frame(3).timestamp_ms - 100.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct VideoClip {
    name: String,
    spec: ScenarioSpec,
    seed: u64,
    frames: Vec<Frame>,
}

impl VideoClip {
    /// Generates a clip of `num_frames` frames from a scenario.
    ///
    /// Deterministic in `(spec, seed)`.
    pub fn generate(name: &str, spec: &ScenarioSpec, seed: u64, num_frames: u32) -> Self {
        Self::generate_with_bands(name, spec, seed, num_frames, 1)
    }

    /// Like [`VideoClip::generate`], additionally fanning each frame's
    /// rasterization across up to `bands` row bands (see
    /// [`Renderer::with_bands`]). Output is byte-identical for every
    /// `bands` value; use it when rendering one large clip with otherwise
    /// idle cores. (World stepping is inherently sequential — frame `i+1`
    /// depends on frame `i` — so across-clip fan-out happens one level up,
    /// in `adavp_video::dataset::render_all`.)
    pub fn generate_with_bands(
        name: &str,
        spec: &ScenarioSpec,
        seed: u64,
        num_frames: u32,
        bands: usize,
    ) -> Self {
        let mut world = World::new(spec.clone(), seed);
        let renderer =
            Renderer::new(spec.width, spec.height, seed, spec.noise_amp).with_bands(bands);
        let interval = spec.frame_interval_ms();
        let mut frames = Vec::with_capacity(num_frames as usize);
        for i in 0..num_frames {
            let image = renderer.render(&world);
            let ground_truth = extract_ground_truth(&world);
            frames.push(Frame {
                index: i as u64,
                timestamp_ms: i as f64 * interval,
                image,
                ground_truth,
            });
            world.step();
        }
        Self {
            name: name.to_string(),
            spec: spec.clone(),
            seed,
            frames,
        }
    }

    /// Clip name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario specification the clip was generated from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the clip has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.spec.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.spec.height
    }

    /// Frames per second.
    pub fn fps(&self) -> f32 {
        self.spec.fps
    }

    /// Interval between frames, in milliseconds.
    pub fn frame_interval_ms(&self) -> f64 {
        self.spec.frame_interval_ms()
    }

    /// Total duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.frames.len() as f64 * self.frame_interval_ms()
    }

    /// The frame at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn frame(&self, index: usize) -> &Frame {
        &self.frames[index]
    }

    /// All frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Iterator over frames.
    pub fn iter(&self) -> std::slice::Iter<'_, Frame> {
        self.frames.iter()
    }
}

impl<'a> IntoIterator for &'a VideoClip {
    type Item = &'a Frame;
    type IntoIter = std::slice::Iter<'a, Frame>;
    fn into_iter(self) -> Self::IntoIter {
        self.frames.iter()
    }
}

fn extract_ground_truth(world: &World) -> Vec<GroundTruthObject> {
    let w = world.spec().width as f32;
    let h = world.spec().height as f32;
    let fps = world.spec().fps.max(1.0);
    world
        .observe()
        .iter()
        .filter_map(|obs| {
            let full = obs.screen_box;
            let clipped = full.clipped(w, h)?;
            let fraction = if full.area() > 0.0 {
                (clipped.area() / full.area()).min(1.0)
            } else {
                0.0
            };
            if fraction >= MIN_VISIBLE_FRACTION && clipped.area() >= MIN_VISIBLE_AREA {
                Some(GroundTruthObject {
                    id: obs.id,
                    class: obs.class,
                    bbox: clipped,
                    visible_fraction: fraction,
                    speed: obs.screen_velocity.norm() / fps,
                })
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn small_spec(s: Scenario) -> ScenarioSpec {
        let mut spec = s.spec();
        spec.width = 160;
        spec.height = 96;
        spec.size_range = (14.0, 26.0);
        spec
    }

    #[test]
    fn generate_deterministic() {
        let spec = small_spec(Scenario::Highway);
        let a = VideoClip::generate("a", &spec, 5, 8);
        let b = VideoClip::generate("b", &spec, 5, 8);
        for (fa, fb) in a.iter().zip(b.iter()) {
            assert_eq!(fa.image, fb.image);
            assert_eq!(fa.ground_truth, fb.ground_truth);
        }
    }

    #[test]
    fn banded_generation_matches_sequential() {
        let spec = small_spec(Scenario::Intersection);
        let seq = VideoClip::generate("s", &spec, 5, 6);
        let banded = VideoClip::generate_with_bands("b", &spec, 5, 6, 4);
        for (fa, fb) in seq.iter().zip(banded.iter()) {
            assert_eq!(fa.image, fb.image);
            assert_eq!(fa.ground_truth, fb.ground_truth);
        }
    }

    #[test]
    fn timestamps_follow_fps() {
        let spec = small_spec(Scenario::Highway);
        let clip = VideoClip::generate("t", &spec, 1, 4);
        assert_eq!(clip.frame(0).timestamp_ms, 0.0);
        assert!((clip.frame(3).timestamp_ms - 100.0).abs() < 0.01);
        assert!((clip.duration_ms() - 4.0 * clip.frame_interval_ms()).abs() < 1e-9);
    }

    #[test]
    fn ground_truth_boxes_inside_frame() {
        let spec = small_spec(Scenario::Intersection);
        let clip = VideoClip::generate("g", &spec, 3, 30);
        for f in &clip {
            for gt in &f.ground_truth {
                assert!(gt.bbox.left >= 0.0);
                assert!(gt.bbox.top >= 0.0);
                assert!(gt.bbox.right() <= clip.width() as f32 + 1e-3);
                assert!(gt.bbox.bottom() <= clip.height() as f32 + 1e-3);
                assert!(gt.visible_fraction > 0.0 && gt.visible_fraction <= 1.0);
                assert!(gt.bbox.area() >= MIN_VISIBLE_AREA);
            }
        }
    }

    #[test]
    fn ground_truth_speed_is_screen_relative_px_per_frame() {
        let spec = small_spec(Scenario::Highway);
        let clip = VideoClip::generate("v", &spec, 3, 30);
        let mut max_speed = 0.0f32;
        for f in &clip {
            for gt in &f.ground_truth {
                assert!(gt.speed.is_finite() && gt.speed >= 0.0);
                max_speed = max_speed.max(gt.speed);
            }
        }
        // Highway traffic moves: some object must have visible motion.
        assert!(max_speed > 0.1, "max speed {max_speed}");
        // And px/frame magnitudes stay plausible for the rendered scale.
        assert!(max_speed < 100.0, "max speed {max_speed}");
    }

    #[test]
    fn ground_truth_ids_persist_across_frames() {
        let spec = small_spec(Scenario::MeetingRoom);
        let clip = VideoClip::generate("m", &spec, 7, 20);
        let first: Vec<_> = clip.frame(0).ground_truth.iter().map(|g| g.id).collect();
        let last: Vec<_> = clip.frame(19).ground_truth.iter().map(|g| g.id).collect();
        let kept = first.iter().filter(|id| last.contains(id)).count();
        assert!(
            kept >= 1,
            "slow scenario should keep objects across 20 frames"
        );
    }

    #[test]
    fn iteration_and_len() {
        let spec = small_spec(Scenario::Highway);
        let clip = VideoClip::generate("i", &spec, 1, 6);
        assert_eq!(clip.len(), 6);
        assert!(!clip.is_empty());
        assert_eq!(clip.iter().count(), 6);
        assert_eq!((&clip).into_iter().count(), 6);
        let empty = VideoClip::generate("e", &spec, 1, 0);
        assert!(empty.is_empty());
    }
}
