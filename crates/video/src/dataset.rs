//! Seeded datasets mirroring the paper's corpus split.
//!
//! The paper trains its adaptation module on 32 videos (105,205 frames) and
//! evaluates on 13 videos (141,213 frames) spanning 14 scenarios. We keep the
//! same video counts and scenario mix but scale frame counts by a
//! [`DatasetScale`] so the full experiment sweep stays tractable on a CPU
//! (documented in DESIGN.md).

use crate::clip::VideoClip;
use crate::scenario::{Scenario, ScenarioSpec};
use adavp_vision::exec::Executor;
use serde::{Deserialize, Serialize};

/// Frame-count scale of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetScale {
    /// Tiny clips for unit/integration tests (~1-2 s per video).
    Smoke,
    /// Medium clips for quick experiments (~7 s per video).
    Standard,
    /// Long clips for the full reported experiment run (~15-20 s per video).
    Full,
}

impl DatasetScale {
    fn train_frames(&self) -> u32 {
        match self {
            DatasetScale::Smoke => 45,
            DatasetScale::Standard => 300,
            DatasetScale::Full => 900,
        }
    }

    fn test_frames(&self) -> u32 {
        match self {
            DatasetScale::Smoke => 60,
            DatasetScale::Standard => 300,
            DatasetScale::Full => 900,
        }
    }
}

/// Recipe for one video in a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoSpec {
    /// Video name (unique within the dataset).
    pub name: String,
    /// Scenario preset.
    pub scenario: Scenario,
    /// Generation seed.
    pub seed: u64,
    /// Number of frames.
    pub frames: u32,
    /// Frame size override applied to the scenario spec, if any.
    pub size: Option<(u32, u32)>,
}

impl VideoSpec {
    /// The fully-resolved scenario spec for this video.
    pub fn scenario_spec(&self) -> ScenarioSpec {
        let mut spec = self.scenario.spec();
        if let Some((w, h)) = self.size {
            spec.width = w;
            spec.height = h;
        }
        spec
    }

    /// Renders the video.
    pub fn generate(&self) -> VideoClip {
        VideoClip::generate(&self.name, &self.scenario_spec(), self.seed, self.frames)
    }
}

/// Renders every video of a dataset, fanning one clip per executor job.
///
/// [`VideoSpec::generate`] is a pure function of `(spec, seed)`, so the
/// returned clips — collected in spec order — are byte-identical for every
/// jobs setting (pinned by `render_all_parallel_matches_sequential`).
pub fn render_all(specs: &[VideoSpec], exec: &Executor) -> Vec<VideoClip> {
    exec.map(specs, |_, v| v.generate())
}

/// The 32-video training set (for learning adaptation thresholds).
///
/// Covers all 14 scenarios at least twice (some three times) with distinct
/// seeds, mirroring "32 videos ... includes 14 scenarios" (§IV-D3).
pub fn training_set(scale: DatasetScale) -> Vec<VideoSpec> {
    let frames = scale.train_frames();
    let mut out = Vec::with_capacity(32);
    let mut seed = 0x7261_u64; // distinct seed space from the test set
                               // Two passes over all 14 scenarios, then 4 extra fast/slow contrast videos.
    for pass in 0..2 {
        for s in Scenario::ALL {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(VideoSpec {
                name: format!("train-{}-{}", s.spec().name, pass),
                scenario: s,
                seed,
                frames,
                size: None,
            });
        }
    }
    for (i, s) in [
        Scenario::Highway,
        Scenario::Racetrack,
        Scenario::MeetingRoom,
        Scenario::ResidentialArea,
    ]
    .into_iter()
    .enumerate()
    {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.push(VideoSpec {
            name: format!("train-extra-{}-{}", s.spec().name, i),
            scenario: s,
            seed,
            frames,
            size: None,
        });
    }
    debug_assert_eq!(out.len(), 32);
    out
}

/// The 13-video testing set (for all evaluation experiments).
///
/// A mixed selection over the scenario space, disjoint seeds from the
/// training set, mirroring "13 video clips" (§III-B).
pub fn testing_set(scale: DatasetScale) -> Vec<VideoSpec> {
    let frames = scale.test_frames();
    let picks = [
        Scenario::Highway,
        Scenario::Intersection,
        Scenario::CityStreet,
        Scenario::TrainStation,
        Scenario::BusStation,
        Scenario::ResidentialArea,
        Scenario::CarMountedHighway,
        Scenario::CarMountedDowntown,
        Scenario::Airplanes,
        Scenario::WildAnimals,
        Scenario::Racetrack,
        Scenario::MeetingRoom,
        Scenario::SkatingRink,
    ];
    picks
        .into_iter()
        .enumerate()
        .map(|(i, s)| VideoSpec {
            name: format!("test-{}", s.spec().name),
            scenario: s,
            seed: 0xbeef_0000 + i as u64 * 7919,
            frames,
            size: None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_set_has_32_videos_all_scenarios() {
        let set = training_set(DatasetScale::Smoke);
        assert_eq!(set.len(), 32);
        for s in Scenario::ALL {
            assert!(
                set.iter().filter(|v| v.scenario == s).count() >= 2,
                "{s:?} underrepresented"
            );
        }
        // Names unique.
        let mut names: Vec<_> = set.iter().map(|v| v.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn testing_set_has_13_videos() {
        let set = testing_set(DatasetScale::Smoke);
        assert_eq!(set.len(), 13);
    }

    #[test]
    fn train_and_test_seeds_disjoint() {
        let train: Vec<u64> = training_set(DatasetScale::Smoke)
            .iter()
            .map(|v| v.seed)
            .collect();
        let test: Vec<u64> = testing_set(DatasetScale::Smoke)
            .iter()
            .map(|v| v.seed)
            .collect();
        for t in &test {
            assert!(!train.contains(t));
        }
    }

    #[test]
    fn scales_order_frame_counts() {
        let a = training_set(DatasetScale::Smoke)[0].frames;
        let b = training_set(DatasetScale::Standard)[0].frames;
        let c = training_set(DatasetScale::Full)[0].frames;
        assert!(a < b && b < c);
    }

    #[test]
    fn render_all_parallel_matches_sequential() {
        let mut specs = testing_set(DatasetScale::Smoke);
        specs.truncate(4);
        for v in &mut specs {
            v.frames = 4;
            v.size = Some((96, 64));
        }
        let seq = render_all(&specs, &Executor::sequential());
        let par = render_all(&specs, &Executor::new(4));
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.name(), b.name());
            for (fa, fb) in a.iter().zip(b.iter()) {
                assert_eq!(fa.image, fb.image);
                assert_eq!(fa.ground_truth, fb.ground_truth);
            }
        }
    }

    #[test]
    fn video_spec_generates() {
        let mut v = testing_set(DatasetScale::Smoke)[0].clone();
        v.frames = 3;
        v.size = Some((96, 64));
        let clip = v.generate();
        assert_eq!(clip.len(), 3);
        assert_eq!(clip.width(), 96);
    }
}
