//! Frame I/O and overlay drawing.
//!
//! The paper's overlay drawer paints bounding boxes on each frame before
//! display (§IV-A). This module provides the equivalent for offline
//! inspection: draw labeled boxes onto a frame and write it as a binary PGM
//! (readable by any image viewer), plus a PGM reader so real grayscale
//! frames can be imported into the pipeline.

use crate::clip::VideoClip;
use adavp_vision::geometry::BoundingBox;
use adavp_vision::image::GrayImage;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Draws rectangle outlines (2 px thick) onto a copy of `image`.
///
/// Each entry pairs a box with the outline intensity to draw it in.
/// Boxes are clipped to the image; fully-outside boxes are ignored.
pub fn draw_boxes(image: &GrayImage, boxes: &[(BoundingBox, u8)]) -> GrayImage {
    let mut out = image.clone();
    let w = image.width() as i64;
    let h = image.height() as i64;
    for (b, tone) in boxes {
        let x0 = b.left.round() as i64;
        let y0 = b.top.round() as i64;
        let x1 = b.right().round() as i64;
        let y1 = b.bottom().round() as i64;
        for t in 0..2i64 {
            // Horizontal edges.
            for x in x0.max(0)..x1.min(w) {
                for &y in &[y0 + t, y1 - 1 - t] {
                    if (0..h).contains(&y) {
                        out.set(x as u32, y as u32, *tone);
                    }
                }
            }
            // Vertical edges.
            for y in y0.max(0)..y1.min(h) {
                for &x in &[x0 + t, x1 - 1 - t] {
                    if (0..w).contains(&x) {
                        out.set(x as u32, y as u32, *tone);
                    }
                }
            }
        }
    }
    out
}

/// Writes `image` as a binary PGM (P5, maxval 255).
///
/// # Errors
///
/// Propagates any I/O error (including failure to create parent dirs).
pub fn write_pgm(image: &GrayImage, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = fs::File::create(path)?;
    write!(f, "P5\n{} {}\n255\n", image.width(), image.height())?;
    f.write_all(image.as_bytes())?;
    Ok(())
}

/// Reads a binary PGM (P5, maxval ≤ 255) written by [`write_pgm`] or any
/// standard tool.
///
/// # Errors
///
/// Returns `InvalidData` for malformed headers or truncated pixel data.
pub fn read_pgm(path: &Path) -> io::Result<GrayImage> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    parse_pgm(&bytes)
}

fn parse_pgm(bytes: &[u8]) -> io::Result<GrayImage> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut pos = 0usize;
    let mut token = |bytes: &[u8]| -> io::Result<String> {
        // Skip whitespace and comments.
        loop {
            while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "truncated header",
            ));
        }
        Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
    };

    if token(bytes)? != "P5" {
        return Err(bad("not a binary PGM (P5)"));
    }
    let width: u32 = token(bytes)?.parse().map_err(|_| bad("bad width"))?;
    let height: u32 = token(bytes)?.parse().map_err(|_| bad("bad height"))?;
    let maxval: u32 = token(bytes)?.parse().map_err(|_| bad("bad maxval"))?;
    if maxval == 0 || maxval > 255 {
        return Err(bad("unsupported maxval"));
    }
    // Exactly one whitespace byte after maxval.
    pos += 1;
    let need = width as usize * height as usize;
    if bytes.len() < pos + need {
        return Err(bad("truncated pixel data"));
    }
    GrayImage::from_raw(width, height, bytes[pos..pos + need].to_vec())
        .ok_or_else(|| bad("dimension mismatch"))
}

/// Writes every `stride`-th frame of a clip (with its ground-truth boxes
/// outlined in white) into `dir` as `frame_NNNNN.pgm`.
///
/// Returns the number of files written.
///
/// # Errors
///
/// Propagates any I/O error.
pub fn export_clip(clip: &VideoClip, dir: &Path, stride: usize) -> io::Result<usize> {
    let stride = stride.max(1);
    let mut written = 0;
    for frame in clip.iter().step_by(stride) {
        let boxes: Vec<(BoundingBox, u8)> =
            frame.ground_truth.iter().map(|g| (g.bbox, 255u8)).collect();
        let img = draw_boxes(&frame.image, &boxes);
        write_pgm(&img, &dir.join(format!("frame_{:05}.pgm", frame.index)))?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("adavp_export_tests").join(name);
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn pgm_round_trip() {
        let img = GrayImage::from_fn(13, 7, |x, y| (x * 17 + y * 3) as u8);
        let dir = tmp_dir("roundtrip");
        let path = dir.join("img.pgm");
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn pgm_parser_rejects_garbage() {
        assert!(parse_pgm(b"P6\n2 2\n255\nxxxx").is_err());
        assert!(parse_pgm(b"P5\n2 2\n255\nxx").is_err()); // truncated
        assert!(parse_pgm(b"P5\n2 2\n70000\n").is_err()); // maxval
        assert!(parse_pgm(b"P5\n").is_err());
    }

    #[test]
    fn pgm_parser_handles_comments() {
        let mut data = b"P5\n# a comment\n2 1\n255\n".to_vec();
        data.extend_from_slice(&[7, 9]);
        let img = parse_pgm(&data).unwrap();
        assert_eq!(img.get(0, 0), 7);
        assert_eq!(img.get(1, 0), 9);
    }

    #[test]
    fn draw_boxes_outlines_without_filling() {
        let img = GrayImage::from_fn(40, 30, |_, _| 100);
        let b = BoundingBox::new(10.0, 8.0, 16.0, 12.0);
        let out = draw_boxes(&img, &[(b, 255)]);
        // Outline pixels changed...
        assert_eq!(out.get(10, 8), 255);
        assert_eq!(out.get(25, 19), 255);
        // ...interior untouched...
        assert_eq!(out.get(18, 14), 100);
        // ...and the original image is unchanged.
        assert_eq!(img.get(10, 8), 100);
    }

    #[test]
    fn draw_boxes_clips_safely() {
        let img = GrayImage::from_fn(20, 20, |_, _| 50);
        // Partially and fully outside boxes must not panic.
        let _ = draw_boxes(
            &img,
            &[
                (BoundingBox::new(-5.0, -5.0, 10.0, 10.0), 200),
                (BoundingBox::new(100.0, 100.0, 5.0, 5.0), 200),
            ],
        );
    }

    #[test]
    fn export_clip_writes_strided_frames() {
        let mut spec = Scenario::Highway.spec();
        spec.width = 64;
        spec.height = 36;
        spec.size_range = (10.0, 16.0);
        let clip = VideoClip::generate("exp", &spec, 3, 10);
        let dir = tmp_dir("clip");
        let n = export_clip(&clip, &dir, 3).unwrap();
        assert_eq!(n, 4); // frames 0, 3, 6, 9
        assert!(dir.join("frame_00000.pgm").exists());
        assert!(dir.join("frame_00009.pgm").exists());
        let img = read_pgm(&dir.join("frame_00000.pgm")).unwrap();
        assert_eq!((img.width(), img.height()), (64, 36));
        let _ = fs::remove_dir_all(dir);
    }
}
