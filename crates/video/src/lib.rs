//! Synthetic video substrate for the AdaVP reproduction.
//!
//! The AdaVP paper evaluates on 45 real videos (ImageNet-VID, Videezy,
//! YouTube) spanning 14 scenarios — surveillance, car-mounted, handheld —
//! none of which are available offline. This crate replaces that corpus with
//! a *world simulator* plus a *software rasterizer*:
//!
//! * [`object`] — object classes (cars, trucks, people, animals, …) with
//!   class families used by the detector's label-confusion model.
//! * [`world`] — a 2-D world of moving textured objects observed by a camera
//!   that can be static, panning, handheld or vehicle-mounted.
//! * [`scenario`] — parameterized presets for the paper's 14 scenarios
//!   (highway, intersection, city street, train station, meeting room, …),
//!   each with a characteristic content-change rate.
//! * [`render`] — renders a world state to a grayscale pixel frame with
//!   smooth procedural textures that real corner detection and Lucas-Kanade
//!   optical flow operate on.
//! * [`clip`] — [`clip::VideoClip`]: rendered frames plus per-frame ground
//!   truth (labels and bounding boxes).
//! * [`dataset`] — seeded training/testing datasets mirroring the paper's
//!   corpus split (105,205 training / 141,213 testing frames, scaled down).
//! * [`buffer`] — the camera frame buffer abstraction the pipelines consume.
//! * [`export`] — PGM frame I/O and bounding-box overlay drawing, for
//!   visual inspection of rendered clips and pipeline outputs.
//!
//! Everything is deterministic given a `u64` seed.
//!
//! # Example
//!
//! ```
//! use adavp_video::scenario::Scenario;
//! use adavp_video::clip::VideoClip;
//!
//! let spec = Scenario::Highway.spec();
//! let clip = VideoClip::generate("demo", &spec, 42, 30);
//! assert_eq!(clip.len(), 30);
//! assert!(clip.frame(0).ground_truth.len() >= 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod clip;
pub mod dataset;
pub mod export;
pub mod object;
pub mod render;
pub mod scenario;
pub mod world;

pub use clip::{Frame, GroundTruthObject, VideoClip};
pub use object::{ClassFamily, ObjectClass, ObjectId};
pub use scenario::{CameraMotion, Scenario, ScenarioSpec};
pub use world::World;
