//! Object classes and identities.
//!
//! The classes mirror the COCO categories the paper's videos contain
//! ("cars, trucks, trains, persons, airplanes, animals"). Classes are grouped
//! into [`ClassFamily`]s: the simulated detector only confuses labels within
//! a family (the paper's Fig. 5 example confuses cars with trucks).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identity of a world object within one video clip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Object category, as a DNN detector would label it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ObjectClass {
    Car,
    Truck,
    Bus,
    Motorcycle,
    Bicycle,
    Person,
    Dog,
    Horse,
    Bird,
    Airplane,
    Boat,
    Train,
}

/// Coarse grouping of visually similar classes.
///
/// The simulated detector's label-confusion noise stays within a family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ClassFamily {
    Vehicle,
    TwoWheeler,
    Animal,
    Person,
    Aircraft,
    Watercraft,
    Rail,
}

impl ObjectClass {
    /// All supported classes.
    pub const ALL: [ObjectClass; 12] = [
        ObjectClass::Car,
        ObjectClass::Truck,
        ObjectClass::Bus,
        ObjectClass::Motorcycle,
        ObjectClass::Bicycle,
        ObjectClass::Person,
        ObjectClass::Dog,
        ObjectClass::Horse,
        ObjectClass::Bird,
        ObjectClass::Airplane,
        ObjectClass::Boat,
        ObjectClass::Train,
    ];

    /// The visual family this class belongs to.
    pub fn family(&self) -> ClassFamily {
        match self {
            ObjectClass::Car | ObjectClass::Truck | ObjectClass::Bus => ClassFamily::Vehicle,
            ObjectClass::Motorcycle | ObjectClass::Bicycle => ClassFamily::TwoWheeler,
            ObjectClass::Dog | ObjectClass::Horse | ObjectClass::Bird => ClassFamily::Animal,
            ObjectClass::Person => ClassFamily::Person,
            ObjectClass::Airplane => ClassFamily::Aircraft,
            ObjectClass::Boat => ClassFamily::Watercraft,
            ObjectClass::Train => ClassFamily::Rail,
        }
    }

    /// Classes in the same family, excluding `self` (confusion candidates).
    pub fn confusable(&self) -> Vec<ObjectClass> {
        ObjectClass::ALL
            .iter()
            .copied()
            .filter(|c| c != self && c.family() == self.family())
            .collect()
    }

    /// Stable small integer for seeding per-class texture generators.
    pub fn texture_seed(&self) -> u32 {
        match self {
            ObjectClass::Car => 1,
            ObjectClass::Truck => 2,
            ObjectClass::Bus => 3,
            ObjectClass::Motorcycle => 4,
            ObjectClass::Bicycle => 5,
            ObjectClass::Person => 6,
            ObjectClass::Dog => 7,
            ObjectClass::Horse => 8,
            ObjectClass::Bird => 9,
            ObjectClass::Airplane => 10,
            ObjectClass::Boat => 11,
            ObjectClass::Train => 12,
        }
    }

    /// Typical rendered aspect ratio (width / height) of the class.
    pub fn aspect_ratio(&self) -> f32 {
        match self {
            ObjectClass::Car => 1.8,
            ObjectClass::Truck => 2.2,
            ObjectClass::Bus => 2.6,
            ObjectClass::Motorcycle => 1.4,
            ObjectClass::Bicycle => 1.3,
            ObjectClass::Person => 0.45,
            ObjectClass::Dog => 1.4,
            ObjectClass::Horse => 1.5,
            ObjectClass::Bird => 1.1,
            ObjectClass::Airplane => 2.8,
            ObjectClass::Boat => 2.0,
            ObjectClass::Train => 4.0,
        }
    }

    /// Base gray tone for rendering (families get distinct tones so the
    /// rasterized frames carry class-correlated appearance).
    pub fn base_tone(&self) -> u8 {
        match self.family() {
            ClassFamily::Vehicle => 150,
            ClassFamily::TwoWheeler => 110,
            ClassFamily::Animal => 95,
            ClassFamily::Person => 170,
            ClassFamily::Aircraft => 200,
            ClassFamily::Watercraft => 130,
            ClassFamily::Rail => 85,
        }
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ObjectClass::Car => "car",
            ObjectClass::Truck => "truck",
            ObjectClass::Bus => "bus",
            ObjectClass::Motorcycle => "motorcycle",
            ObjectClass::Bicycle => "bicycle",
            ObjectClass::Person => "person",
            ObjectClass::Dog => "dog",
            ObjectClass::Horse => "horse",
            ObjectClass::Bird => "bird",
            ObjectClass::Airplane => "airplane",
            ObjectClass::Boat => "boat",
            ObjectClass::Train => "train",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_partition_classes() {
        for c in ObjectClass::ALL {
            // Every class belongs to exactly one family, trivially true, but
            // confusable() must never contain the class itself and must stay
            // within the family.
            let conf = c.confusable();
            assert!(!conf.contains(&c));
            for other in conf {
                assert_eq!(other.family(), c.family());
            }
        }
    }

    #[test]
    fn vehicles_confusable_with_each_other() {
        let conf = ObjectClass::Car.confusable();
        assert!(conf.contains(&ObjectClass::Truck));
        assert!(conf.contains(&ObjectClass::Bus));
        assert!(!conf.contains(&ObjectClass::Person));
    }

    #[test]
    fn person_has_no_confusion_candidates() {
        assert!(ObjectClass::Person.confusable().is_empty());
    }

    #[test]
    fn texture_seeds_unique() {
        let mut seeds: Vec<u32> = ObjectClass::ALL.iter().map(|c| c.texture_seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), ObjectClass::ALL.len());
    }

    #[test]
    fn display_names() {
        assert_eq!(ObjectClass::Car.to_string(), "car");
        assert_eq!(ObjectClass::Airplane.to_string(), "airplane");
        assert_eq!(ObjectId(7).to_string(), "obj#7");
    }

    #[test]
    fn aspect_ratios_positive() {
        for c in ObjectClass::ALL {
            assert!(c.aspect_ratio() > 0.0);
            assert!(c.base_tone() > 0);
        }
    }
}
