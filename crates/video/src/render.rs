//! Software rasterizer: world state → grayscale pixel frame.
//!
//! Frames must carry *real* trackable texture, because the AdaVP tracker runs
//! genuine Shi-Tomasi + Lucas-Kanade on them. The renderer therefore draws:
//!
//! * a **background** that is a smooth function of *world* coordinates (so it
//!   translates rigidly under camera motion) built from separable sinusoid
//!   products (evaluated via per-row/per-column tables for speed);
//! * each **object** as a rectangle of smooth per-object texture anchored to
//!   the object's box (so the texture translates rigidly with the object) with
//!   a dark rim that produces strong corners at the object boundary;
//! * optional small **sensor noise**, deterministic per (pixel, frame).
//!
//! Painter's order: objects with larger ids (newer) draw on top.

use crate::world::{ObservedObject, World};
use adavp_vision::image::GrayImage;

/// Virtual shutter time (seconds). Objects moving relative to the camera
/// smear by `|screen_velocity| * EXPOSURE_S` pixels — which is what makes
/// fast content genuinely harder for corner extraction and optical flow,
/// reproducing the paper's Fig. 2 decay rates.
pub const EXPOSURE_S: f32 = 0.022;

/// Renders [`World`] states to frames. Construct once per clip.
#[derive(Debug, Clone)]
pub struct Renderer {
    width: u32,
    height: u32,
    bg_seed: u64,
    noise_amp: f32,
    bands: usize,
}

/// Splitmix64 — cheap deterministic hash for noise and parameter derivation.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Uniform f32 in [0,1) from a hash state.
fn unit(h: u64) -> f32 {
    (h >> 40) as f32 / (1u64 << 24) as f32
}

impl Renderer {
    /// Creates a renderer for `width x height` frames.
    ///
    /// `bg_seed` selects the background pattern; `noise_amp` is the sensor
    /// noise amplitude in gray levels (0 disables noise).
    pub fn new(width: u32, height: u32, bg_seed: u64, noise_amp: f32) -> Self {
        Self {
            width,
            height,
            bg_seed,
            noise_amp,
            bands: 1,
        }
    }

    /// Fans each frame render across up to `bands` row bands (scoped
    /// threads). Every pixel is a pure function of `(world state, pixel,
    /// frame index)`, so banded output is byte-identical to `bands = 1`
    /// (pinned by `banded_render_is_byte_identical`). Worth it only for
    /// large frames; small renders should keep the default of 1.
    pub fn with_bands(mut self, bands: usize) -> Self {
        self.bands = bands.max(1);
        self
    }

    /// Renders the world's current state.
    pub fn render(&self, world: &World) -> GrayImage {
        let mut out = GrayImage::new(self.width, self.height);
        self.render_into(world, &mut out);
        out
    }

    /// Renders the world's current state into `out`, reusing its pixel
    /// buffer (reallocated only when dimensions differ). This is the
    /// recycled-buffer path for streaming consumers that do not keep
    /// frames: pair it with a `ScratchPool`-style buffer you pass back in
    /// every frame and the render loop performs no per-frame allocations
    /// beyond the small sinusoid tables.
    pub fn render_into(&self, world: &World, out: &mut GrayImage) {
        let t = world.time_s();
        let offset = world.camera_offset(t);
        let mut observed = world.observe();
        // Newer objects on top; sort ascending so later draws overwrite.
        observed.sort_by_key(|o| o.id);
        self.render_at_into(offset.x, offset.y, &observed, world.frame_index(), out);
    }

    /// Renders a frame given an explicit camera offset and object list.
    ///
    /// Exposed separately so tests can render hand-built object layouts.
    pub fn render_at(
        &self,
        ox: f32,
        oy: f32,
        objects: &[ObservedObject],
        frame_index: u64,
    ) -> GrayImage {
        let mut out = GrayImage::new(self.width, self.height);
        self.render_at_into(ox, oy, objects, frame_index, &mut out);
        out
    }

    /// [`Renderer::render_at`] writing into a recycled buffer.
    pub fn render_at_into(
        &self,
        ox: f32,
        oy: f32,
        objects: &[ObservedObject],
        frame_index: u64,
        out: &mut GrayImage,
    ) {
        let w = self.width as usize;
        let h = self.height as usize;
        if out.width() != self.width || out.height() != self.height {
            *out = GrayImage::new(self.width, self.height);
        }

        // --- Background via separable sinusoid tables ------------------
        // bg = 128 + a1 * sx1[x]*cy1[y] + a2 * (sx2[x]*cy2[y] + cx2[x]*sy2[y])
        let d = |i: u64| splitmix(self.bg_seed.wrapping_add(i));
        let f1x = 0.035 + 0.05 * unit(d(1));
        let f1y = 0.035 + 0.05 * unit(d(2));
        let f2 = 0.015 + 0.03 * unit(d(3));
        let p1 = unit(d(4)) * std::f32::consts::TAU;
        let p2 = unit(d(5)) * std::f32::consts::TAU;

        let mut sx1 = vec![0.0f32; w];
        let mut sx2 = vec![0.0f32; w];
        let mut cx2 = vec![0.0f32; w];
        for (x, ((s1, s2), c2)) in sx1
            .iter_mut()
            .zip(sx2.iter_mut())
            .zip(cx2.iter_mut())
            .enumerate()
        {
            let wx = ox + x as f32;
            *s1 = (wx * f1x + p1).sin();
            let ang = wx * f2 + p2;
            *s2 = ang.sin();
            *c2 = ang.cos();
        }
        let mut cy1 = vec![0.0f32; h];
        let mut sy2 = vec![0.0f32; h];
        let mut cy2 = vec![0.0f32; h];
        for (y, ((c1, s2), c2)) in cy1
            .iter_mut()
            .zip(sy2.iter_mut())
            .zip(cy2.iter_mut())
            .enumerate()
        {
            let wy = oy + y as f32;
            *c1 = (wy * f1y).cos();
            let ang = wy * f2 * 1.7;
            *s2 = ang.sin();
            *c2 = ang.cos();
        }
        let tables = BgTables {
            sx1: &sx1,
            sx2: &sx2,
            cx2: &cx2,
            cy1: &cy1,
            sy2: &sy2,
            cy2: &cy2,
        };

        // Every pixel is independent, so row bands can render concurrently
        // into disjoint sub-slices of the frame buffer.
        let ranges = adavp_vision::parallel::band_ranges(h, self.bands.min(h.max(1)));
        let buf = out.as_mut_bytes();
        if ranges.len() <= 1 {
            self.render_rows(buf, 0, h, &tables, objects, frame_index);
            return;
        }
        let mut slices: Vec<(usize, usize, &mut [u8])> = Vec::with_capacity(ranges.len());
        let mut rest = buf;
        for &(y0, y1) in &ranges {
            let (head, tail) = rest.split_at_mut((y1 - y0) * w);
            slices.push((y0, y1, head));
            rest = tail;
        }
        std::thread::scope(|scope| {
            let mut it = slices.into_iter();
            let first = it.next().expect("at least one band");
            for (y0, y1, rows) in it {
                let tables = &tables;
                scope.spawn(move || {
                    self.render_rows(rows, y0, y1, tables, objects, frame_index);
                });
            }
            self.render_rows(first.2, first.0, first.1, &tables, objects, frame_index);
        });
    }

    /// Renders global rows `[y0, y1)` into `rows` (a `(y1 - y0) * width`
    /// slice): background, then objects clipped to the band, then noise.
    fn render_rows(
        &self,
        rows: &mut [u8],
        y0: usize,
        y1: usize,
        tables: &BgTables<'_>,
        objects: &[ObservedObject],
        frame_index: u64,
    ) {
        let w = self.width as usize;
        let a1 = 38.0;
        let a2 = 26.0;
        for y in y0..y1 {
            let row = &mut rows[(y - y0) * w..(y - y0 + 1) * w];
            let c1 = tables.cy1[y];
            let s2y = tables.sy2[y];
            let c2y = tables.cy2[y];
            for (x, px) in row.iter_mut().enumerate() {
                let v = 128.0
                    + a1 * tables.sx1[x] * c1
                    + a2 * (tables.sx2[x] * c2y + tables.cx2[x] * s2y);
                *px = v.clamp(0.0, 255.0) as u8;
            }
        }

        for obj in objects {
            self.paint_object(rows, y0, y1, obj);
        }

        if self.noise_amp > 0.0 {
            let amp = self.noise_amp;
            let fseed = splitmix(frame_index.wrapping_mul(0x5851f42d4c957f2d));
            for (off, px) in rows.iter_mut().enumerate() {
                // Global pixel index keeps the noise field band-invariant.
                let i = y0 * w + off;
                let n = unit(splitmix(fseed ^ (i as u64))) * 2.0 - 1.0;
                let v = *px as f32 + n * amp;
                *px = v.clamp(0.0, 255.0) as u8;
            }
        }
    }

    /// Paints one object into `rows` (global rows `[band_y0, band_y1)`).
    fn paint_object(&self, rows: &mut [u8], band_y0: usize, band_y1: usize, obj: &ObservedObject) {
        let b = &obj.screen_box;
        let x0 = b.left.floor().max(0.0) as i64;
        let y0 = (b.top.floor().max(0.0) as i64).max(band_y0 as i64);
        let x1 = (b.right().ceil() as i64).min(self.width as i64);
        let y1 = (b.bottom().ceil() as i64)
            .min(self.height as i64)
            .min(band_y1 as i64);
        if x1 <= x0 || y1 <= y0 {
            return;
        }

        // Per-object texture parameters.
        let seed = obj.texture_seed as u64 ^ 0x0bec_7e57;
        let d = |i: u64| splitmix(seed.wrapping_add(i));
        let fu = 0.18 + 0.25 * unit(d(1));
        let fv = 0.18 + 0.25 * unit(d(2));
        let fd = 0.10 + 0.15 * unit(d(3));
        let pu = unit(d(4)) * std::f32::consts::TAU;
        let pv = unit(d(5)) * std::f32::consts::TAU;
        let tone = obj.base_tone as f32 + (unit(d(6)) - 0.5) * 40.0;

        let rim = 2.0f32;
        // Object intensity at local (box-relative) coordinates, or None when
        // the sample falls outside the box.
        let sample = |lx: f32, ly: f32| -> Option<f32> {
            if lx < 0.0 || ly < 0.0 || lx > b.width - 1.0 || ly > b.height - 1.0 {
                return None;
            }
            let edge = lx.min(b.width - 1.0 - lx).min(ly).min(b.height - 1.0 - ly);
            Some(if edge < rim {
                // Dark rim with a slight gradient: strong box-corner features.
                30.0 + edge * 12.0
            } else {
                tone + 34.0 * (lx * fu + pu).sin() * (ly * fv + pv).cos()
                    + 22.0 * ((lx + ly) * fd).sin()
            })
        };

        // Exposure motion blur: average the object's appearance over its
        // relative motion during the shutter window. Taps that fall outside
        // the box blend with the background already in `buf`.
        let smear = obj.screen_velocity * EXPOSURE_S;
        let blur_len = smear.norm();
        let taps: &[f32] = if blur_len < 0.75 {
            &[0.0]
        } else if blur_len < 3.0 {
            &[-0.33, 0.0, 0.33]
        } else {
            &[-0.4, -0.2, 0.0, 0.2, 0.4]
        };

        let w = self.width as usize;
        for y in y0..y1 {
            let row_base = (y as usize - band_y0) * w;
            for x in x0..x1 {
                let lx = x as f32 - b.left;
                let ly = y as f32 - b.top;
                let bg = rows[row_base + x as usize] as f32;
                let mut acc = 0.0f32;
                for &t in taps {
                    let v = sample(lx - smear.x * t, ly - smear.y * t).unwrap_or(bg);
                    acc += v;
                }
                let v = acc / taps.len() as f32;
                rows[row_base + x as usize] = v.clamp(0.0, 255.0) as u8;
            }
        }
    }
}

/// Borrowed per-frame background sinusoid tables shared by every row band.
struct BgTables<'a> {
    sx1: &'a [f32],
    sx2: &'a [f32],
    cx2: &'a [f32],
    cy1: &'a [f32],
    sy2: &'a [f32],
    cy2: &'a [f32],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ObjectClass, ObjectId};
    use crate::scenario::{CameraMotion, Scenario};
    use crate::world::World;
    use adavp_vision::geometry::{BoundingBox, Vec2};

    fn obs(id: u32, left: f32, top: f32, w: f32, h: f32) -> ObservedObject {
        ObservedObject {
            id: ObjectId(id),
            class: ObjectClass::Car,
            screen_box: BoundingBox::new(left, top, w, h),
            texture_seed: 1234 + id,
            base_tone: 150,
            screen_velocity: Vec2::ZERO,
        }
    }

    #[test]
    fn renders_correct_dimensions() {
        let r = Renderer::new(64, 48, 7, 0.0);
        let img = r.render_at(0.0, 0.0, &[], 0);
        assert_eq!((img.width(), img.height()), (64, 48));
    }

    #[test]
    fn deterministic_render() {
        let r = Renderer::new(64, 48, 7, 2.0);
        let a = r.render_at(10.0, 5.0, &[obs(0, 10.0, 10.0, 20.0, 12.0)], 3);
        let b = r.render_at(10.0, 5.0, &[obs(0, 10.0, 10.0, 20.0, 12.0)], 3);
        assert_eq!(a, b);
    }

    #[test]
    fn background_translates_with_camera() {
        // bg(x + 10 | offset 0) == bg(x | offset 10) (no noise).
        let r = Renderer::new(64, 48, 7, 0.0);
        let a = r.render_at(0.0, 0.0, &[], 0);
        let b = r.render_at(10.0, 0.0, &[], 0);
        for y in 0..48 {
            for x in 0..54 {
                let va = a.get(x + 10, y) as i32;
                let vb = b.get(x, y) as i32;
                assert!(
                    (va - vb).abs() <= 1,
                    "background must be a function of world coords ({x},{y}): {va} vs {vb}"
                );
            }
        }
    }

    #[test]
    fn object_texture_translates_with_object() {
        let r = Renderer::new(96, 64, 7, 0.0);
        let a = r.render_at(0.0, 0.0, &[obs(0, 20.0, 20.0, 30.0, 18.0)], 0);
        let b = r.render_at(0.0, 0.0, &[obs(0, 25.0, 22.0, 30.0, 18.0)], 0);
        // Compare interiors (skip the rim).
        for dy in 4..14u32 {
            for dx in 4..26u32 {
                let va = a.get(20 + dx, 20 + dy) as i32;
                let vb = b.get(25 + dx, 22 + dy) as i32;
                assert!(
                    (va - vb).abs() <= 1,
                    "object texture must move rigidly with the box ({dx},{dy}): {va} vs {vb}"
                );
            }
        }
    }

    #[test]
    fn object_region_differs_from_background() {
        let r = Renderer::new(96, 64, 7, 0.0);
        let empty = r.render_at(0.0, 0.0, &[], 0);
        let with = r.render_at(0.0, 0.0, &[obs(0, 30.0, 20.0, 30.0, 20.0)], 0);
        let mut diff = 0u32;
        for y in 20..40 {
            for x in 30..60 {
                if empty.get(x, y) != with.get(x, y) {
                    diff += 1;
                }
            }
        }
        assert!(
            diff > 300,
            "object should repaint most of its region, diff = {diff}"
        );
    }

    #[test]
    fn newer_objects_draw_on_top() {
        let r = Renderer::new(96, 64, 7, 0.0);
        let lower = obs(0, 20.0, 20.0, 30.0, 20.0);
        let mut upper = obs(1, 20.0, 20.0, 30.0, 20.0);
        upper.base_tone = 220;
        let img = r.render_at(0.0, 0.0, &[lower.clone(), upper.clone()], 0);
        let only_upper = r.render_at(0.0, 0.0, &[upper], 0);
        for y in 24..36 {
            for x in 24..46 {
                assert_eq!(img.get(x, y), only_upper.get(x, y));
            }
        }
    }

    #[test]
    fn offscreen_object_is_clipped_safely() {
        let r = Renderer::new(64, 48, 7, 0.0);
        // Fully outside, partially outside: must not panic.
        let _ = r.render_at(0.0, 0.0, &[obs(0, -100.0, -100.0, 30.0, 20.0)], 0);
        let _ = r.render_at(0.0, 0.0, &[obs(0, -10.0, -10.0, 30.0, 20.0)], 0);
        let _ = r.render_at(0.0, 0.0, &[obs(0, 55.0, 40.0, 30.0, 20.0)], 0);
    }

    #[test]
    fn noise_changes_between_frames_but_is_bounded() {
        let r = Renderer::new(64, 48, 7, 3.0);
        let f0 = r.render_at(0.0, 0.0, &[], 0);
        let f1 = r.render_at(0.0, 0.0, &[], 1);
        assert_ne!(f0, f1, "noise must vary per frame");
        let clean = Renderer::new(64, 48, 7, 0.0).render_at(0.0, 0.0, &[], 0);
        for y in 0..48 {
            for x in 0..64 {
                let d = (f0.get(x, y) as i32 - clean.get(x, y) as i32).abs();
                assert!(d <= 4, "noise exceeded amplitude: {d}");
            }
        }
    }

    #[test]
    fn banded_render_is_byte_identical() {
        // Objects straddling band boundaries, camera offset, noise on: the
        // banded output must match the single-band render byte for byte.
        let objects = [
            obs(0, 10.0, 5.0, 40.0, 30.0),
            obs(1, 30.0, 25.0, 25.0, 20.0),
            obs(2, -5.0, 40.0, 30.0, 20.0),
        ];
        let base = Renderer::new(96, 64, 7, 2.5);
        let reference = base.render_at(3.5, -2.0, &objects, 11);
        for bands in [2, 3, 5, 64, 200] {
            let banded = base.clone().with_bands(bands);
            let img = banded.render_at(3.5, -2.0, &objects, 11);
            assert_eq!(img, reference, "bands={bands}");
        }
    }

    #[test]
    fn render_into_reuses_buffer_and_matches() {
        let spec = Scenario::Highway.spec();
        let mut world = World::new(spec.clone(), 9);
        let r = Renderer::new(spec.width, spec.height, 9, 2.0);
        let mut reused = GrayImage::new(1, 1); // wrong dims: must self-correct
        for _ in 0..3 {
            let fresh = r.render(&world);
            let was_sized = reused.width() == spec.width && reused.height() == spec.height;
            let ptr_before = reused.as_bytes().as_ptr();
            r.render_into(&world, &mut reused);
            assert_eq!(reused, fresh);
            if was_sized {
                // Once sized correctly the buffer must be reused in place.
                assert_eq!(reused.as_bytes().as_ptr(), ptr_before);
            }
            world.step();
        }
    }

    #[test]
    fn full_world_render_smoke() {
        let mut spec = Scenario::Highway.spec();
        spec.width = 160;
        spec.height = 90;
        spec.camera = CameraMotion::Static;
        let mut world = World::new(spec, 21);
        let r = Renderer::new(160, 90, 21, 2.0);
        for _ in 0..5 {
            let img = r.render(&world);
            assert_eq!(img.width(), 160);
            world.step();
        }
    }
}
