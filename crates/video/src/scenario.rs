//! Scenario presets: parameterized generators for the paper's 14 video
//! scenarios.
//!
//! The AdaVP training corpus covers "surveillance videos at highway,
//! intersection, city street, train station, bus station, and residential
//! area; car-mounted videos driving on highway or around downtown; mobile
//! camera videos about airplanes, boat, animals in the wild, racetrack,
//! meeting room and skating rink" (§IV-D3). Each [`Scenario`] maps to a
//! [`ScenarioSpec`] whose object speeds and camera motion reproduce that
//! scenario's characteristic content-change rate.

use crate::object::ObjectClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the camera moves over the world.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CameraMotion {
    /// Fixed surveillance camera.
    Static,
    /// Constant pan at the given velocity (world px/s).
    Pan {
        /// Horizontal pan speed.
        vx: f32,
        /// Vertical pan speed.
        vy: f32,
    },
    /// Handheld camera: slow drift plus sinusoidal jitter.
    Handheld {
        /// Drift speed (world px/s).
        drift: f32,
        /// Jitter amplitude (px).
        jitter_amp: f32,
        /// Jitter frequency (Hz).
        jitter_hz: f32,
    },
    /// Vehicle-mounted camera: fast horizontal ego-motion with slight sway.
    Vehicle {
        /// Forward (horizontal) speed (world px/s).
        speed: f32,
        /// Vertical sway amplitude (px).
        sway_amp: f32,
    },
}

/// How spawned objects move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DirectionPattern {
    /// Two-way horizontal traffic (e.g. highway).
    TwoWayHorizontal,
    /// One-way horizontal flow.
    OneWayHorizontal,
    /// Objects converge on / cross the centre (e.g. intersection).
    Crossing,
    /// Arbitrary directions (e.g. animals, skating rink).
    Random,
    /// Nearly stationary objects with small wander (e.g. meeting room).
    Loiter,
}

/// Full parameterization of a synthetic video scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable scenario name.
    pub name: String,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames per second of the virtual camera.
    pub fps: f32,
    /// Camera motion model.
    pub camera: CameraMotion,
    /// Object classes that appear (uniformly sampled).
    pub classes: Vec<ObjectClass>,
    /// Number of objects placed in view at frame 0.
    pub initial_objects: u32,
    /// Cap on simultaneously live objects.
    pub max_objects: u32,
    /// Expected new-object arrivals per second.
    pub spawn_rate_hz: f32,
    /// Object speed range in world px/s.
    pub speed_range: (f32, f32),
    /// Object rendered-height range in pixels.
    pub size_range: (f32, f32),
    /// Motion pattern of the objects.
    pub direction: DirectionPattern,
    /// Amplitude of lateral sinusoidal wobble (px), for organic motion.
    pub wobble_amp: f32,
    /// Sensor noise amplitude added at render time (gray levels).
    pub noise_amp: f32,
    /// Period (seconds) of the scenario's activity cycle — object speeds are
    /// modulated over time so content-change rate varies *within* a video
    /// (traffic waves, bursts of motion), which is what exercises AdaVP's
    /// runtime model switching.
    pub activity_period_s: f32,
    /// Modulation depth in `[0, 1]`: object speeds swing between
    /// `(1 - depth) * v` and `v` over one activity period. 0 = constant rate.
    pub activity_depth: f32,
    /// Range of per-object relative scale rates (fraction of size per
    /// second). Positive = approaching the camera; the tracker never
    /// rescales boxes, so nonzero rates make IoU decay between detections.
    pub scale_rate_range: (f32, f32),
}

impl ScenarioSpec {
    /// Frame interval in milliseconds.
    pub fn frame_interval_ms(&self) -> f64 {
        1000.0 / self.fps as f64
    }

    /// A rough scalar expectation of how fast this scenario's content
    /// changes (px/frame): camera speed plus mean object speed, normalized
    /// by fps. Used only for test assertions and dataset bookkeeping —
    /// the *system* always measures change rate online from tracking.
    pub fn nominal_change_rate(&self) -> f32 {
        let cam = match self.camera {
            CameraMotion::Static => 0.0,
            CameraMotion::Pan { vx, vy } => (vx * vx + vy * vy).sqrt(),
            CameraMotion::Handheld {
                drift,
                jitter_amp,
                jitter_hz,
            } => drift + jitter_amp * jitter_hz * 2.0,
            CameraMotion::Vehicle { speed, .. } => speed,
        };
        let obj = (self.speed_range.0 + self.speed_range.1) / 2.0;
        (cam + obj) / self.fps
    }
}

/// The 14 scenario presets from the paper's training-corpus description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Scenario {
    Highway,
    Intersection,
    CityStreet,
    TrainStation,
    BusStation,
    ResidentialArea,
    CarMountedHighway,
    CarMountedDowntown,
    Airplanes,
    Boats,
    WildAnimals,
    Racetrack,
    MeetingRoom,
    SkatingRink,
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.spec().name)
    }
}

impl Scenario {
    /// All 14 presets.
    pub const ALL: [Scenario; 14] = [
        Scenario::Highway,
        Scenario::Intersection,
        Scenario::CityStreet,
        Scenario::TrainStation,
        Scenario::BusStation,
        Scenario::ResidentialArea,
        Scenario::CarMountedHighway,
        Scenario::CarMountedDowntown,
        Scenario::Airplanes,
        Scenario::Boats,
        Scenario::WildAnimals,
        Scenario::Racetrack,
        Scenario::MeetingRoom,
        Scenario::SkatingRink,
    ];

    /// The default frame size used throughout the reproduction
    /// (the paper uses 1280x720; we render at half scale — see DESIGN.md).
    pub const FRAME_WIDTH: u32 = 640;
    /// See [`Scenario::FRAME_WIDTH`].
    pub const FRAME_HEIGHT: u32 = 360;

    /// Builds the parameter set for this scenario.
    pub fn spec(&self) -> ScenarioSpec {
        use CameraMotion as Cam;
        use DirectionPattern as Dir;
        use ObjectClass as C;
        let base = |name: &str| ScenarioSpec {
            name: name.to_string(),
            width: Self::FRAME_WIDTH,
            height: Self::FRAME_HEIGHT,
            fps: 30.0,
            camera: Cam::Static,
            classes: vec![C::Car],
            initial_objects: 3,
            max_objects: 8,
            spawn_rate_hz: 0.6,
            speed_range: (20.0, 60.0),
            size_range: (30.0, 70.0),
            direction: Dir::TwoWayHorizontal,
            wobble_amp: 0.0,
            noise_amp: 2.0,
            activity_period_s: 12.0,
            activity_depth: 0.0,
            scale_rate_range: (-0.22, 0.22),
        };
        match self {
            Scenario::Highway => ScenarioSpec {
                classes: vec![C::Car, C::Car, C::Truck, C::Bus],
                initial_objects: 5,
                max_objects: 10,
                spawn_rate_hz: 1.6,
                speed_range: (140.0, 300.0),
                size_range: (28.0, 64.0),
                activity_depth: 0.6,
                activity_period_s: 10.0,
                ..base("highway")
            },
            Scenario::Intersection => ScenarioSpec {
                classes: vec![C::Car, C::Truck, C::Person, C::Bicycle],
                initial_objects: 4,
                max_objects: 9,
                spawn_rate_hz: 1.1,
                speed_range: (60.0, 170.0),
                direction: Dir::Crossing,
                wobble_amp: 2.0,
                activity_depth: 0.6,
                activity_period_s: 10.0,
                scale_rate_range: (-0.32, 0.32),
                ..base("intersection")
            },
            Scenario::CityStreet => ScenarioSpec {
                classes: vec![C::Car, C::Person, C::Person, C::Bicycle, C::Motorcycle],
                initial_objects: 5,
                max_objects: 10,
                spawn_rate_hz: 1.0,
                speed_range: (40.0, 130.0),
                wobble_amp: 3.0,
                activity_depth: 0.5,
                scale_rate_range: (-0.30, 0.30),
                ..base("city-street")
            },
            Scenario::TrainStation => ScenarioSpec {
                classes: vec![C::Person, C::Person, C::Train],
                initial_objects: 4,
                max_objects: 8,
                spawn_rate_hz: 0.5,
                speed_range: (15.0, 70.0),
                size_range: (26.0, 80.0),
                wobble_amp: 2.5,
                activity_depth: 0.6,
                activity_period_s: 15.0,
                ..base("train-station")
            },
            Scenario::BusStation => ScenarioSpec {
                classes: vec![C::Person, C::Person, C::Bus],
                initial_objects: 4,
                max_objects: 8,
                spawn_rate_hz: 0.5,
                speed_range: (10.0, 55.0),
                wobble_amp: 2.5,
                activity_depth: 0.6,
                activity_period_s: 14.0,
                ..base("bus-station")
            },
            Scenario::ResidentialArea => ScenarioSpec {
                classes: vec![C::Person, C::Car, C::Dog, C::Bicycle],
                initial_objects: 3,
                max_objects: 6,
                spawn_rate_hz: 0.25,
                speed_range: (8.0, 40.0),
                wobble_amp: 2.0,
                ..base("residential-area")
            },
            Scenario::CarMountedHighway => ScenarioSpec {
                camera: Cam::Vehicle {
                    speed: 180.0,
                    sway_amp: 3.0,
                },
                classes: vec![C::Car, C::Truck, C::Bus],
                initial_objects: 4,
                max_objects: 8,
                spawn_rate_hz: 1.0,
                speed_range: (30.0, 120.0),
                direction: Dir::OneWayHorizontal,
                scale_rate_range: (-0.10, 0.35),
                activity_depth: 0.55,
                activity_period_s: 9.0,
                ..base("car-mounted-highway")
            },
            Scenario::CarMountedDowntown => ScenarioSpec {
                camera: Cam::Vehicle {
                    speed: 90.0,
                    sway_amp: 4.0,
                },
                classes: vec![C::Car, C::Person, C::Bicycle, C::Truck],
                initial_objects: 5,
                max_objects: 9,
                spawn_rate_hz: 0.9,
                speed_range: (15.0, 80.0),
                wobble_amp: 2.0,
                activity_depth: 0.5,
                activity_period_s: 9.0,
                scale_rate_range: (-0.15, 0.38),
                ..base("car-mounted-downtown")
            },
            Scenario::Airplanes => ScenarioSpec {
                camera: Cam::Handheld {
                    drift: 25.0,
                    jitter_amp: 3.0,
                    jitter_hz: 0.8,
                },
                classes: vec![C::Airplane],
                initial_objects: 1,
                max_objects: 3,
                spawn_rate_hz: 0.15,
                speed_range: (60.0, 160.0),
                size_range: (40.0, 90.0),
                direction: Dir::OneWayHorizontal,
                ..base("airplanes")
            },
            Scenario::Boats => ScenarioSpec {
                camera: Cam::Handheld {
                    drift: 10.0,
                    jitter_amp: 2.5,
                    jitter_hz: 0.6,
                },
                classes: vec![C::Boat],
                initial_objects: 2,
                max_objects: 4,
                spawn_rate_hz: 0.2,
                speed_range: (10.0, 45.0),
                size_range: (36.0, 90.0),
                ..base("boats")
            },
            Scenario::WildAnimals => ScenarioSpec {
                camera: Cam::Handheld {
                    drift: 20.0,
                    jitter_amp: 4.0,
                    jitter_hz: 1.0,
                },
                classes: vec![C::Dog, C::Horse, C::Bird],
                initial_objects: 3,
                max_objects: 7,
                spawn_rate_hz: 0.4,
                speed_range: (20.0, 140.0),
                direction: Dir::Random,
                wobble_amp: 5.0,
                activity_depth: 0.7,
                activity_period_s: 8.0,
                scale_rate_range: (-0.22, 0.22),
                ..base("wild-animals")
            },
            Scenario::Racetrack => ScenarioSpec {
                camera: Cam::Pan { vx: 120.0, vy: 0.0 },
                classes: vec![C::Car, C::Motorcycle],
                initial_objects: 4,
                max_objects: 8,
                spawn_rate_hz: 1.0,
                speed_range: (180.0, 320.0),
                direction: Dir::OneWayHorizontal,
                scale_rate_range: (-0.15, 0.15),
                activity_depth: 0.5,
                activity_period_s: 8.0,
                ..base("racetrack")
            },
            Scenario::MeetingRoom => ScenarioSpec {
                classes: vec![C::Person],
                initial_objects: 4,
                max_objects: 6,
                spawn_rate_hz: 0.05,
                speed_range: (1.0, 8.0),
                size_range: (50.0, 110.0),
                direction: Dir::Loiter,
                wobble_amp: 1.5,
                scale_rate_range: (0.0, 0.0),
                ..base("meeting-room")
            },
            Scenario::SkatingRink => ScenarioSpec {
                classes: vec![C::Person],
                initial_objects: 5,
                max_objects: 9,
                spawn_rate_hz: 0.8,
                speed_range: (70.0, 190.0),
                direction: Dir::Random,
                wobble_amp: 6.0,
                activity_depth: 0.7,
                activity_period_s: 7.0,
                ..base("skating-rink")
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        for s in Scenario::ALL {
            let spec = s.spec();
            assert!(!spec.name.is_empty());
            assert!(spec.fps > 0.0);
            assert!(spec.speed_range.0 <= spec.speed_range.1);
            assert!(spec.size_range.0 <= spec.size_range.1);
            assert!(spec.initial_objects <= spec.max_objects);
            assert!(!spec.classes.is_empty());
        }
    }

    #[test]
    fn fourteen_scenarios() {
        assert_eq!(Scenario::ALL.len(), 14);
        let mut names: Vec<String> = Scenario::ALL.iter().map(|s| s.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 14, "scenario names must be unique");
    }

    #[test]
    fn change_rate_ordering_matches_intuition() {
        // Meeting room is the slowest scenario, racetrack among the fastest.
        let slow = Scenario::MeetingRoom.spec().nominal_change_rate();
        let fast = Scenario::Racetrack.spec().nominal_change_rate();
        let highway = Scenario::Highway.spec().nominal_change_rate();
        assert!(slow < highway);
        assert!(highway < fast + 5.0);
        assert!(
            slow < 1.0,
            "meeting room should change <1 px/frame, got {slow}"
        );
        assert!(
            fast > 5.0,
            "racetrack should change >5 px/frame, got {fast}"
        );
    }

    #[test]
    fn frame_interval() {
        let spec = Scenario::Highway.spec();
        assert!((spec.frame_interval_ms() - 33.333).abs() < 0.01);
    }
}
