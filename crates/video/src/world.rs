//! The 2-D world simulator: moving objects observed by a moving camera.
//!
//! A [`World`] owns a set of textured objects that translate (with optional
//! wobble) through an unbounded 2-D plane, and a camera whose viewport pans,
//! jitters or races over that plane per the scenario's
//! [`CameraMotion`]. Objects spawn at the
//! viewport edges, cross it and despawn — which is exactly what makes
//! tracking accuracy decay in fast scenarios (new objects the tracker has
//! never seen, old objects leaving).
//!
//! The world advances in fixed steps of one frame interval; all randomness
//! comes from a seeded [`StdRng`], so a `(spec, seed)` pair always produces
//! the same video.

use crate::object::{ObjectClass, ObjectId};
use crate::scenario::{CameraMotion, DirectionPattern, ScenarioSpec};
use adavp_vision::geometry::{BoundingBox, Point2, Vec2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A live object in the world (world coordinates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldObject {
    /// Stable identity within the clip.
    pub id: ObjectId,
    /// Class label.
    pub class: ObjectClass,
    /// Centre position in world coordinates (excluding wobble).
    pub center: Point2,
    /// Rendered width in pixels.
    pub width: f32,
    /// Rendered height in pixels.
    pub height: f32,
    /// Linear velocity in world px/s.
    pub velocity: Vec2,
    /// Wobble amplitude (px) applied perpendicular to velocity.
    pub wobble_amp: f32,
    /// Wobble phase offset (radians).
    pub wobble_phase: f32,
    /// Per-object texture seed (differs even within a class).
    pub texture_seed: u32,
    /// Relative size growth per second (positive = approaching the camera).
    pub scale_rate: f32,
}

impl WorldObject {
    /// Wobble angular frequency (rad/s); ~1.2 Hz organic sway.
    const WOBBLE_OMEGA: f32 = 7.5;

    /// Centre including the sinusoidal wobble at world time `t` (seconds).
    pub fn effective_center(&self, t: f64) -> Point2 {
        if self.wobble_amp == 0.0 {
            return self.center;
        }
        let phase = Self::WOBBLE_OMEGA * t as f32 + self.wobble_phase;
        // Perpendicular to motion; for near-stationary objects wobble in y.
        let dir = if self.velocity.norm() > 1e-3 {
            let v = self.velocity / self.velocity.norm();
            Vec2::new(-v.y, v.x)
        } else {
            Vec2::new(0.0, 1.0)
        };
        self.center + dir * (self.wobble_amp * phase.sin())
    }

    /// Axis-aligned bounds in world coordinates at time `t`.
    pub fn world_box(&self, t: f64) -> BoundingBox {
        BoundingBox::from_center(self.effective_center(t), self.width, self.height)
    }
}

/// An object as seen through the camera at one instant (screen coordinates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservedObject {
    /// Identity of the underlying world object.
    pub id: ObjectId,
    /// Class label.
    pub class: ObjectClass,
    /// Unclipped bounding box in screen coordinates.
    pub screen_box: BoundingBox,
    /// Texture seed, for the rasterizer.
    pub texture_seed: u32,
    /// Base gray tone, for the rasterizer.
    pub base_tone: u8,
    /// Screen-space velocity (px/s) of the object relative to the camera —
    /// the rasterizer uses it to apply exposure motion blur.
    pub screen_velocity: Vec2,
}

/// The world simulator. See the module docs.
#[derive(Debug, Clone)]
pub struct World {
    spec: ScenarioSpec,
    rng: StdRng,
    time_s: f64,
    frame_index: u64,
    next_id: u32,
    objects: Vec<WorldObject>,
}

/// Margin (px) beyond the viewport at which leaving objects are despawned
/// and inside which new objects are spawned.
const DESPAWN_MARGIN: f32 = 90.0;

impl World {
    /// Creates a world at time zero with the scenario's initial objects
    /// already placed inside the viewport.
    pub fn new(spec: ScenarioSpec, seed: u64) -> Self {
        let mut w = Self {
            rng: StdRng::seed_from_u64(seed ^ 0xada0_f00d),
            spec,
            time_s: 0.0,
            frame_index: 0,
            next_id: 0,
            objects: Vec::new(),
        };
        for _ in 0..w.spec.initial_objects {
            let obj = w.make_object(true);
            w.objects.push(obj);
        }
        w
    }

    /// The scenario driving this world.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Current simulation time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Index of the frame that [`World::observe`] would currently produce.
    pub fn frame_index(&self) -> u64 {
        self.frame_index
    }

    /// The live objects (world coordinates).
    pub fn objects(&self) -> &[WorldObject] {
        &self.objects
    }

    /// Camera viewport origin (world coordinates of the screen's top-left
    /// pixel) at time `t`.
    pub fn camera_offset(&self, t: f64) -> Vec2 {
        let tf = t as f32;
        match self.spec.camera {
            CameraMotion::Static => Vec2::ZERO,
            CameraMotion::Pan { vx, vy } => Vec2::new(vx * tf, vy * tf),
            CameraMotion::Handheld {
                drift,
                jitter_amp,
                jitter_hz,
            } => {
                let w = std::f32::consts::TAU * jitter_hz;
                Vec2::new(
                    drift * tf + jitter_amp * (w * tf).sin(),
                    jitter_amp * 0.7 * (w * 1.3 * tf + 1.1).cos(),
                )
            }
            CameraMotion::Vehicle { speed, sway_amp } => {
                Vec2::new(speed * tf, sway_amp * (1.9 * tf).sin())
            }
        }
    }

    /// Camera velocity (world px/s) at time `t`, by central difference.
    pub fn camera_velocity(&self, t: f64) -> Vec2 {
        let eps = 1e-3;
        let a = self.camera_offset(t - eps);
        let b = self.camera_offset(t + eps);
        (b - a) / (2.0 * eps as f32)
    }

    /// Viewport rectangle in world coordinates at time `t`.
    pub fn viewport(&self, t: f64) -> BoundingBox {
        let o = self.camera_offset(t);
        BoundingBox::new(o.x, o.y, self.spec.width as f32, self.spec.height as f32)
    }

    /// Observes the current world state: every live object projected to
    /// screen coordinates (unclipped; callers clip for visibility).
    pub fn observe(&self) -> Vec<ObservedObject> {
        let o = self.camera_offset(self.time_s);
        let cam_v = self.camera_velocity(self.time_s);
        self.objects
            .iter()
            .map(|obj| {
                let wb = obj.world_box(self.time_s);
                ObservedObject {
                    id: obj.id,
                    class: obj.class,
                    screen_box: BoundingBox::new(wb.left - o.x, wb.top - o.y, wb.width, wb.height),
                    texture_seed: obj.texture_seed,
                    base_tone: obj.class.base_tone(),
                    screen_velocity: obj.velocity - cam_v,
                }
            })
            .collect()
    }

    /// Instantaneous activity factor in `[1 - depth, 1]` — scenarios with a
    /// nonzero activity depth speed up and slow down over their activity
    /// period, varying content-change rate within the video.
    pub fn activity_factor(&self, t: f64) -> f32 {
        let depth = self.spec.activity_depth;
        if depth <= 0.0 {
            return 1.0;
        }
        let phase = std::f32::consts::TAU * (t as f32) / self.spec.activity_period_s.max(0.1);
        1.0 - depth * 0.5 * (1.0 + phase.sin())
    }

    /// Advances the world by one frame interval: moves objects, despawns
    /// leavers, spawns arrivals.
    pub fn step(&mut self) {
        let dt = 1.0 / self.spec.fps as f64;
        let factor = self.activity_factor(self.time_s);
        self.time_s += dt;
        self.frame_index += 1;
        let dtf = dt as f32 * factor;
        for obj in &mut self.objects {
            obj.center = obj.center + obj.velocity * dtf;
            if obj.scale_rate != 0.0 {
                let g = 1.0 + obj.scale_rate * dtf;
                obj.width = (obj.width * g).clamp(8.0, 240.0);
                obj.height = (obj.height * g).clamp(8.0, 240.0);
            }
        }
        self.despawn_leavers();
        self.maybe_spawn(dt as f32);
    }

    fn despawn_leavers(&mut self) {
        let vp = self.viewport(self.time_s).scaled(1.0).union_bounds(&{
            let v = self.viewport(self.time_s);
            BoundingBox::new(
                v.left - DESPAWN_MARGIN,
                v.top - DESPAWN_MARGIN,
                v.width + 2.0 * DESPAWN_MARGIN,
                v.height + 2.0 * DESPAWN_MARGIN,
            )
        });
        let t = self.time_s;
        self.objects.retain(|o| {
            let b = o.world_box(t);
            if b.intersection(&vp).is_some() {
                return true;
            }
            // Fully outside the margin: keep only objects still approaching
            // the viewport (fresh spawns may begin outside it).
            let c = b.center();
            let vc = vp.center();
            let towards = (vc - c).x * o.velocity.x + (vc - c).y * o.velocity.y;
            towards > 0.0
        });
    }

    fn maybe_spawn(&mut self, dtf: f32) {
        if self.objects.len() as u32 >= self.spec.max_objects {
            return;
        }
        let p = (self.spec.spawn_rate_hz * dtf).min(1.0);
        if self.rng.gen::<f32>() < p {
            let obj = self.make_object(false);
            self.objects.push(obj);
        }
    }

    fn sample_velocity(&mut self) -> Vec2 {
        let (lo, hi) = self.spec.speed_range;
        let speed = self.rng.gen_range(lo..=hi.max(lo + f32::EPSILON));
        match self.spec.direction {
            DirectionPattern::TwoWayHorizontal => {
                let sign = if self.rng.gen::<bool>() { 1.0 } else { -1.0 };
                Vec2::new(sign * speed, self.rng.gen_range(-0.05..0.05) * speed)
            }
            DirectionPattern::OneWayHorizontal => {
                Vec2::new(speed, self.rng.gen_range(-0.05..0.05) * speed)
            }
            DirectionPattern::Crossing => {
                let angle = self.rng.gen_range(0.0..std::f32::consts::TAU);
                Vec2::new(angle.cos() * speed, angle.sin() * speed * 0.6)
            }
            DirectionPattern::Random => {
                let angle = self.rng.gen_range(0.0..std::f32::consts::TAU);
                Vec2::new(angle.cos() * speed, angle.sin() * speed)
            }
            DirectionPattern::Loiter => {
                let angle = self.rng.gen_range(0.0..std::f32::consts::TAU);
                Vec2::new(angle.cos() * speed, angle.sin() * speed)
            }
        }
    }

    fn make_object(&mut self, inside: bool) -> WorldObject {
        let class = self.spec.classes[self.rng.gen_range(0..self.spec.classes.len())];
        let (slo, shi) = self.spec.size_range;
        let height = self.rng.gen_range(slo..=shi.max(slo + f32::EPSILON));
        let width = height * class.aspect_ratio();
        let velocity = self.sample_velocity();
        let vp = self.viewport(self.time_s);

        let center = if inside || self.spec.direction == DirectionPattern::Loiter {
            // Place fully inside the viewport (best effort for big objects).
            let mx = (width / 2.0 + 4.0).min(vp.width / 2.0 - 1.0);
            let my = (height / 2.0 + 4.0).min(vp.height / 2.0 - 1.0);
            Point2::new(
                vp.left
                    + self
                        .rng
                        .gen_range(mx..=(vp.width - mx).max(mx + f32::EPSILON)),
                vp.top
                    + self
                        .rng
                        .gen_range(my..=(vp.height - my).max(my + f32::EPSILON)),
            )
        } else {
            // Enter from the edge the velocity points away from.
            let y = vp.top + self.rng.gen_range(0.15..0.85) * vp.height;
            let x = vp.left + self.rng.gen_range(0.15..0.85) * vp.width;
            if velocity.x.abs() >= velocity.y.abs() {
                if velocity.x >= 0.0 {
                    Point2::new(vp.left - width / 2.0 - 1.0, y)
                } else {
                    Point2::new(vp.right() + width / 2.0 + 1.0, y)
                }
            } else if velocity.y >= 0.0 {
                Point2::new(x, vp.top - height / 2.0 - 1.0)
            } else {
                Point2::new(x, vp.bottom() + height / 2.0 + 1.0)
            }
        };

        let id = ObjectId(self.next_id);
        self.next_id += 1;
        WorldObject {
            id,
            class,
            center,
            width,
            height,
            velocity,
            wobble_amp: if self.spec.wobble_amp > 0.0 {
                self.rng.gen_range(0.0..self.spec.wobble_amp)
            } else {
                0.0
            },
            wobble_phase: self.rng.gen_range(0.0..std::f32::consts::TAU),
            texture_seed: self.rng.gen(),
            scale_rate: {
                let (lo, hi) = self.spec.scale_rate_range;
                if hi > lo {
                    self.rng.gen_range(lo..=hi)
                } else {
                    lo
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn deterministic_given_seed() {
        let spec = Scenario::Highway.spec();
        let mut a = World::new(spec.clone(), 7);
        let mut b = World::new(spec, 7);
        for _ in 0..50 {
            a.step();
            b.step();
        }
        assert_eq!(a.objects(), b.objects());
        assert_eq!(a.observe(), b.observe());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = Scenario::Highway.spec();
        let a = World::new(spec.clone(), 1);
        let b = World::new(spec, 2);
        assert_ne!(a.objects(), b.objects());
    }

    #[test]
    fn initial_objects_visible() {
        for s in [
            Scenario::Highway,
            Scenario::MeetingRoom,
            Scenario::WildAnimals,
        ] {
            let spec = s.spec();
            let w = World::new(spec.clone(), 11);
            let vp = w.viewport(0.0);
            let visible = w
                .objects()
                .iter()
                .filter(|o| o.world_box(0.0).intersection(&vp).is_some())
                .count();
            assert_eq!(
                visible as u32, spec.initial_objects,
                "scenario {s:?}: all initial objects should intersect the viewport"
            );
        }
    }

    #[test]
    fn objects_move() {
        let spec = Scenario::Highway.spec();
        let mut w = World::new(spec, 3);
        let before: Vec<Point2> = w.objects().iter().map(|o| o.center).collect();
        for _ in 0..10 {
            w.step();
        }
        let after: Vec<Point2> = w.objects().iter().map(|o| o.center).collect();
        // At least the surviving prefix has moved.
        let moved = before
            .iter()
            .zip(after.iter())
            .filter(|(a, b)| a.distance(**b) > 1.0)
            .count();
        assert!(moved > 0);
    }

    #[test]
    fn population_stays_bounded() {
        let spec = Scenario::Highway.spec();
        let max = spec.max_objects;
        let mut w = World::new(spec, 5);
        for _ in 0..600 {
            w.step();
            assert!(w.objects().len() as u32 <= max);
        }
    }

    #[test]
    fn fast_scenario_turns_over_objects() {
        // On the racetrack objects cross and leave; ids should advance well
        // past the initial population within 10 seconds.
        let mut w = World::new(Scenario::Racetrack.spec(), 13);
        for _ in 0..300 {
            w.step();
        }
        let max_id = w.objects().iter().map(|o| o.id.0).max().unwrap_or(0);
        assert!(max_id > 6, "expected object turnover, max id = {max_id}");
    }

    #[test]
    fn meeting_room_retains_objects() {
        let mut w = World::new(Scenario::MeetingRoom.spec(), 17);
        let initial: Vec<ObjectId> = w.objects().iter().map(|o| o.id).collect();
        for _ in 0..300 {
            w.step();
        }
        let now: Vec<ObjectId> = w.objects().iter().map(|o| o.id).collect();
        let kept = initial.iter().filter(|id| now.contains(id)).count();
        assert!(
            kept >= initial.len() - 1,
            "loitering objects should persist ({kept}/{} kept)",
            initial.len()
        );
    }

    #[test]
    fn camera_models_move_as_specified() {
        let mut spec = Scenario::Highway.spec();
        spec.camera = CameraMotion::Pan { vx: 100.0, vy: 0.0 };
        let w = World::new(spec, 1);
        let o1 = w.camera_offset(1.0);
        assert!((o1.x - 100.0).abs() < 1e-3);
        let vp = w.viewport(2.0);
        assert!((vp.left - 200.0).abs() < 1e-3);

        let mut spec2 = Scenario::Highway.spec();
        spec2.camera = CameraMotion::Static;
        let w2 = World::new(spec2, 1);
        assert_eq!(w2.camera_offset(5.0), Vec2::ZERO);
    }

    #[test]
    fn wobble_is_bounded_and_periodic() {
        let obj = WorldObject {
            id: ObjectId(0),
            class: ObjectClass::Person,
            center: Point2::new(100.0, 100.0),
            width: 20.0,
            height: 40.0,
            velocity: Vec2::new(10.0, 0.0),
            wobble_amp: 3.0,
            wobble_phase: 0.0,
            texture_seed: 1,
            scale_rate: 0.0,
        };
        for i in 0..100 {
            let t = i as f64 * 0.033;
            let c = obj.effective_center(t);
            assert!((c.y - 100.0).abs() <= 3.0 + 1e-4);
            assert!(
                (c.x - 100.0).abs() < 1e-4,
                "wobble must be perpendicular to velocity"
            );
        }
    }

    #[test]
    fn observation_is_screen_relative() {
        let mut spec = Scenario::Highway.spec();
        spec.camera = CameraMotion::Pan { vx: 50.0, vy: 0.0 };
        let mut w = World::new(spec, 9);
        w.step();
        let o = w.camera_offset(w.time_s());
        for (obs, obj) in w.observe().iter().zip(w.objects()) {
            let wb = obj.world_box(w.time_s());
            assert!((obs.screen_box.left - (wb.left - o.x)).abs() < 1e-3);
            assert!((obs.screen_box.top - (wb.top - o.y)).abs() < 1e-3);
        }
    }
}
