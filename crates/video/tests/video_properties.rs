//! Property-based tests for the video substrate: world simulation, ground
//! truth and rendering invariants under randomized scenario parameters.

use adavp_video::clip::VideoClip;
use adavp_video::scenario::{CameraMotion, Scenario};
use adavp_video::world::World;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn world_population_bounded_for_any_scenario(
        scenario_idx in 0usize..14,
        seed in 0u64..10_000,
    ) {
        let mut spec = Scenario::ALL[scenario_idx].spec();
        spec.width = 200;
        spec.height = 120;
        spec.size_range = (14.0, 26.0);
        let max = spec.max_objects;
        let mut w = World::new(spec, seed);
        for _ in 0..150 {
            w.step();
            prop_assert!(w.objects().len() as u32 <= max);
            // Scale rates never explode or collapse object sizes (growth is
            // clamped in World::step; spawn size follows the scenario spec).
            for o in w.objects() {
                prop_assert!(o.width > 0.0 && o.width <= 240.0 + 1e-3);
                prop_assert!(o.height > 0.0 && o.height <= 240.0 + 1e-3);
            }
        }
    }

    #[test]
    fn ground_truth_always_inside_frame(
        scenario_idx in 0usize..14,
        seed in 0u64..10_000,
    ) {
        let mut spec = Scenario::ALL[scenario_idx].spec();
        spec.width = 200;
        spec.height = 120;
        spec.size_range = (14.0, 26.0);
        let clip = VideoClip::generate("prop", &spec, seed, 40);
        for f in &clip {
            for gt in &f.ground_truth {
                prop_assert!(gt.bbox.left >= 0.0);
                prop_assert!(gt.bbox.top >= 0.0);
                prop_assert!(gt.bbox.right() <= 200.0 + 1e-3);
                prop_assert!(gt.bbox.bottom() <= 120.0 + 1e-3);
                prop_assert!(gt.visible_fraction > 0.0 && gt.visible_fraction <= 1.0);
            }
            // Object ids unique within a frame.
            let mut ids: Vec<_> = f.ground_truth.iter().map(|g| g.id).collect();
            ids.sort();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before);
        }
    }

    #[test]
    fn generation_deterministic_for_any_seed(seed in 0u64..10_000) {
        let mut spec = Scenario::Intersection.spec();
        spec.width = 120;
        spec.height = 80;
        spec.size_range = (12.0, 20.0);
        let a = VideoClip::generate("a", &spec, seed, 10);
        let b = VideoClip::generate("b", &spec, seed, 10);
        for (fa, fb) in a.iter().zip(b.iter()) {
            prop_assert_eq!(&fa.image, &fb.image);
            prop_assert_eq!(&fa.ground_truth, &fb.ground_truth);
        }
    }

    #[test]
    fn camera_offset_continuous(
        t in 0.0f64..20.0,
        pan in -200.0f32..200.0,
    ) {
        let mut spec = Scenario::Highway.spec();
        spec.camera = CameraMotion::Pan { vx: pan, vy: 0.0 };
        let w = World::new(spec, 1);
        let dt = 1.0 / 30.0;
        let a = w.camera_offset(t);
        let b = w.camera_offset(t + dt);
        // One frame of camera motion is bounded by |pan| * dt (+ jitter 0).
        prop_assert!((b.x - a.x).abs() <= pan.abs() * dt as f32 + 1e-3);
    }

    #[test]
    fn activity_factor_in_declared_range(
        scenario_idx in 0usize..14,
        t in 0.0f64..60.0,
    ) {
        let spec = Scenario::ALL[scenario_idx].spec();
        let depth = spec.activity_depth;
        let w = World::new(spec, 3);
        let f = w.activity_factor(t);
        prop_assert!(f <= 1.0 + 1e-6);
        prop_assert!(f >= 1.0 - depth - 1e-6);
    }
}
