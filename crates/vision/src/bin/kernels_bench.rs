//! Kernel micro-benchmark harness: times the vision hot-path kernels and
//! writes `BENCH_kernels.json` (kernel -> ns/op plus a multi-point
//! pyramidal-LK baseline-vs-optimized comparison).
//!
//! Run with `cargo run --release -p adavp-vision --bin kernels_bench`
//! (optionally passing an output path; defaults to `BENCH_kernels.json` in
//! the current directory). Dependency-free: JSON is emitted by hand.

use adavp_vision::flow::{LkParams, PyramidalLk};
use adavp_vision::geometry::Point2;
use adavp_vision::gradient::{
    gaussian_blur_into, gaussian_blur_into_scalar, scharr_gradients_i16_into,
    scharr_gradients_into, scharr_gradients_into_scalar, GradientField, GradientFieldI16,
};
use adavp_vision::image::GrayImage;
use adavp_vision::perf;
use adavp_vision::pyramid::Pyramid;
use adavp_vision::scratch::ScratchPool;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const IMG_W: u32 = 256;
const IMG_H: u32 = 256;
const PYRAMID_LEVELS: u32 = 3;
const TARGET_NS_PER_BENCH: u128 = 250_000_000; // ~0.25 s per kernel

fn textured(w: u32, h: u32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let xf = x as f32;
        let yf = y as f32;
        let v = 128.0
            + 50.0 * (xf * 0.35).sin() * (yf * 0.27).cos()
            + 40.0 * ((xf * 0.12 + yf * 0.23).sin())
            + 20.0 * ((xf * 0.05).cos() * (yf * 0.4).sin());
        v.clamp(0.0, 255.0) as u8
    })
}

fn shifted(img: &GrayImage, dx: i64, dy: i64) -> GrayImage {
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        img.get_clamped(x as i64 - dx, y as i64 - dy)
    })
}

/// Times `f` adaptively: estimates cost from one warmup call, then loops to
/// roughly [`TARGET_NS_PER_BENCH`]. Returns mean ns/op.
fn bench_ns<F: FnMut()>(mut f: F) -> u64 {
    let warm = Instant::now();
    f();
    let estimate = warm.elapsed().as_nanos().max(1);
    let iters = (TARGET_NS_PER_BENCH / estimate).clamp(3, 100_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() as u64) / iters
}

struct Entry {
    name: &'static str,
    ns_per_op: u64,
    /// Input pixels consumed per op, used to derive Mpix/s throughput.
    pixels: u64,
    note: &'static str,
}

impl Entry {
    fn mpix_per_s(&self) -> f64 {
        // pixels/ns == Gpix/s, so scale by 1000 for Mpix/s.
        self.pixels as f64 / self.ns_per_op.max(1) as f64 * 1000.0
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let img = textured(IMG_W, IMG_H);
    let next_img = shifted(&img, 3, -2);
    let mut pool = ScratchPool::new();
    let mut entries: Vec<Entry> = Vec::new();

    eprintln!("image: {IMG_W}x{IMG_H}, pyramid levels: {PYRAMID_LEVELS}");

    let frame_pixels = (IMG_W * IMG_H) as u64;
    let pyramid_pixels: u64 = (0..PYRAMID_LEVELS)
        .map(|l| ((IMG_W >> l) * (IMG_H >> l)) as u64)
        .sum();

    // --- Gaussian blur -----------------------------------------------------
    let mut blur_out = GrayImage::new(IMG_W, IMG_H);
    entries.push(Entry {
        name: "gaussian_blur_into_256",
        ns_per_op: bench_ns(|| {
            gaussian_blur_into(black_box(&img), &mut blur_out, &mut pool);
            black_box(&blur_out);
        }),
        pixels: frame_pixels,
        note: "separable 5-tap blur, pooled intermediate, 256x256",
    });
    let mut blur_scalar_out = GrayImage::new(IMG_W, IMG_H);
    entries.push(Entry {
        name: "gaussian_blur_scalar_256",
        ns_per_op: bench_ns(|| {
            gaussian_blur_into_scalar(black_box(&img), &mut blur_scalar_out, &mut pool);
            black_box(&blur_scalar_out);
        }),
        pixels: frame_pixels,
        note: "scalar u32 baseline for the 5-tap blur",
    });
    assert_eq!(
        blur_out.as_bytes(),
        blur_scalar_out.as_bytes(),
        "fixed-point blur diverged from scalar baseline"
    );

    // --- Downsample --------------------------------------------------------
    let mut down_out = GrayImage::new(IMG_W / 2, IMG_H / 2);
    entries.push(Entry {
        name: "downsample_into_256",
        ns_per_op: bench_ns(|| {
            black_box(&img).downsample_into(&mut down_out);
            black_box(&down_out);
        }),
        pixels: frame_pixels,
        note: "2x2 box downsample into reused buffer, 256x256 -> 128x128",
    });
    let mut down_scalar_out = GrayImage::new(IMG_W / 2, IMG_H / 2);
    entries.push(Entry {
        name: "downsample_scalar_256",
        ns_per_op: bench_ns(|| {
            black_box(&img).downsample_into_scalar(&mut down_scalar_out);
            black_box(&down_scalar_out);
        }),
        pixels: frame_pixels,
        note: "scalar u32 baseline for the 2x2 box downsample",
    });
    assert_eq!(
        down_out.as_bytes(),
        down_scalar_out.as_bytes(),
        "fixed-point downsample diverged from scalar baseline"
    );

    // --- Scharr gradients --------------------------------------------------
    let mut field = GradientField::empty();
    entries.push(Entry {
        name: "scharr_gradients_into_256",
        ns_per_op: bench_ns(|| {
            scharr_gradients_into(black_box(&img), &mut field, &mut pool);
            black_box(&field);
        }),
        pixels: frame_pixels,
        note: "separable Scharr gx+gy into reused field, 256x256",
    });
    let mut field_scalar = GradientField::empty();
    entries.push(Entry {
        name: "scharr_scalar_256",
        ns_per_op: bench_ns(|| {
            scharr_gradients_into_scalar(black_box(&img), &mut field_scalar, &mut pool);
            black_box(&field_scalar);
        }),
        pixels: frame_pixels,
        note: "scalar baseline for the separable Scharr kernel",
    });
    assert!(
        field.gx_plane() == field_scalar.gx_plane() && field.gy_plane() == field_scalar.gy_plane(),
        "vectorized Scharr diverged from scalar baseline"
    );
    let mut field_i16 = GradientFieldI16::empty();
    entries.push(Entry {
        name: "scharr_i16_256",
        ns_per_op: bench_ns(|| {
            scharr_gradients_i16_into(black_box(&img), &mut field_i16, &mut pool);
            black_box(&field_i16);
        }),
        pixels: frame_pixels,
        note: "fixed-point i16 Scharr (un-normalized taps)",
    });
    let mut widened = GradientField::empty();
    field_i16.to_f32_into(&mut widened);
    assert!(
        widened.gx_plane() == field_scalar.gx_plane()
            && widened.gy_plane() == field_scalar.gy_plane(),
        "i16 Scharr widened to f32 diverged from scalar baseline"
    );

    // --- Pyramid build: fresh vs pooled ------------------------------------
    entries.push(Entry {
        name: "pyramid_build_fresh_256x3",
        ns_per_op: bench_ns(|| {
            black_box(Pyramid::build(black_box(&img), PYRAMID_LEVELS));
        }),
        pixels: pyramid_pixels,
        note: "allocating build (no pool reuse)",
    });
    // Steady state: recycle each pyramid back into the pool.
    perf::reset();
    let pooled_ns = bench_ns(|| {
        let p = Pyramid::build_with(black_box(&img), PYRAMID_LEVELS, &mut pool);
        black_box(&p);
        p.recycle(&mut pool);
    });
    let pooled_work = perf::snapshot();
    entries.push(Entry {
        name: "pyramid_build_pooled_256x3",
        ns_per_op: pooled_ns,
        pixels: pyramid_pixels,
        note: "steady-state build via ScratchPool (allocation-free)",
    });

    // --- Corner detection ---------------------------------------------------
    let gft = adavp_vision::features::GoodFeaturesParams::default();
    entries.push(Entry {
        name: "good_features_256",
        ns_per_op: bench_ns(|| {
            black_box(adavp_vision::features::good_features_to_track(
                black_box(&img),
                &gft,
                None,
            ));
        }),
        pixels: frame_pixels,
        note: "Shi-Tomasi incl. gradient computation, 256x256",
    });
    let cached_grad = adavp_vision::gradient::scharr_gradients(&img);
    entries.push(Entry {
        name: "good_features_from_gradients_256",
        ns_per_op: bench_ns(|| {
            black_box(adavp_vision::features::good_features_from_gradients(
                black_box(&cached_grad),
                &gft,
                None,
            ));
        }),
        pixels: frame_pixels,
        note: "Shi-Tomasi reusing a cached gradient field",
    });

    // --- Pyramidal LK multi-point: baseline vs optimized vs parallel --------
    let lk = PyramidalLk::new(LkParams::default());
    let pts: Vec<Point2> = {
        let mut v = Vec::new();
        let mut y = 16u32;
        while y < IMG_H - 16 {
            let mut x = 16u32;
            while x < IMG_W - 16 {
                v.push(Point2::new(x as f32, y as f32));
                x += 16;
            }
            y += 16;
        }
        v
    };
    eprintln!("LK multi-point: {} points", pts.len());

    // The tracker's per-frame pattern: pyramids exist (carried forward /
    // built once per frame); one track_pyramids call per frame pair. A
    // fresh prev pyramid per call would re-run gradient computation inside
    // the timed region for BOTH paths (lazily for the optimized one), so
    // gradients are part of the measured per-frame cost either way; the
    // optimized path additionally reuses its cache across repeated calls
    // the way the real tracker reuses its carried-forward reference.
    let prev_pyr = Pyramid::build(&img, PYRAMID_LEVELS);
    let next_pyr = Pyramid::build(&next_img, PYRAMID_LEVELS);

    let baseline_ns = bench_ns(|| {
        black_box(lk.track_pyramids_baseline(black_box(&prev_pyr), black_box(&next_pyr), &pts));
    });
    // Fresh-pyramid variant: build the reference pyramid inside the timed
    // region so gradient computation is part of the per-frame cost,
    // matching what a brand-new reference frame costs end to end.
    let opt_fresh_ns = bench_ns(|| {
        let p = Pyramid::build(&img, PYRAMID_LEVELS);
        black_box(lk.track_pyramids_sequential(black_box(&p), black_box(&next_pyr), &pts));
    });
    let optimized_ns = bench_ns(|| {
        black_box(lk.track_pyramids_sequential(black_box(&prev_pyr), black_box(&next_pyr), &pts));
    });
    #[cfg(feature = "parallel")]
    let parallel_ns = bench_ns(|| {
        black_box(lk.track_pyramids_parallel(black_box(&prev_pyr), black_box(&next_pyr), &pts));
    });
    #[cfg(not(feature = "parallel"))]
    let parallel_ns = optimized_ns;

    // Sanity: all three paths agree bit-for-bit.
    let a = lk.track_pyramids_baseline(&prev_pyr, &next_pyr, &pts);
    let b = lk.track_pyramids_sequential(&prev_pyr, &next_pyr, &pts);
    assert_eq!(a, b, "baseline and optimized LK diverged");
    #[cfg(feature = "parallel")]
    assert_eq!(
        b,
        lk.track_pyramids_parallel(&prev_pyr, &next_pyr, &pts),
        "parallel LK diverged"
    );

    let fps = |ns: u64| 1e9 / ns as f64;
    let speedup_opt = baseline_ns as f64 / optimized_ns as f64;
    let speedup_par = baseline_ns as f64 / parallel_ns as f64;
    eprintln!(
        "LK: baseline {baseline_ns} ns/frame ({:.1} fps), optimized {optimized_ns} ns/frame \
         ({:.1} fps, {speedup_opt:.2}x), parallel {parallel_ns} ns/frame ({:.1} fps, \
         {speedup_par:.2}x), optimized+fresh-pyramid {opt_fresh_ns} ns/frame",
        fps(baseline_ns),
        fps(optimized_ns),
        fps(parallel_ns),
    );

    // --- JSON ---------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"image\": \"{IMG_W}x{IMG_H}\", \"pyramid_levels\": {PYRAMID_LEVELS}, \
         \"threads\": {}, \"parallel_feature\": {}, \"features\": {{\"parallel\": {}, \
         \"simd\": {}, \"fixed_point\": {}}}, \"target_isa\": \"{}\"}},",
        adavp_vision::parallel::max_threads(),
        cfg!(feature = "parallel"),
        cfg!(feature = "parallel"),
        cfg!(feature = "simd"),
        cfg!(feature = "fixed-point"),
        // Compile-time ISA level (no runtime probing): reflects the baseline the
        // binary was built for, e.g. the x86-64-v3 pin in .cargo/config.toml.
        if cfg!(target_feature = "avx2") {
            "x86-64-v3"
        } else if cfg!(target_feature = "sse4.2") {
            "x86-64-v2"
        } else if cfg!(target_arch = "x86_64") {
            "x86-64-baseline"
        } else {
            "other"
        },
    );
    json.push_str("  \"kernels\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_op\": {}, \"pixels\": {}, \"mpix_per_s\": {:.1}, \
             \"note\": \"{}\"}}",
            e.name,
            e.ns_per_op,
            e.pixels,
            e.mpix_per_s(),
            e.note
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"lk_multipoint\": {{\"points\": {}, \"baseline_ns_per_frame\": {baseline_ns}, \
         \"optimized_ns_per_frame\": {optimized_ns}, \"optimized_fresh_pyramid_ns_per_frame\": \
         {opt_fresh_ns}, \"parallel_ns_per_frame\": {parallel_ns}, \"baseline_fps\": {:.2}, \
         \"optimized_fps\": {:.2}, \"parallel_fps\": {:.2}, \"speedup_optimized\": \
         {speedup_opt:.3}, \"speedup_parallel\": {speedup_par:.3}}},",
        pts.len(),
        fps(baseline_ns),
        fps(optimized_ns),
        fps(parallel_ns),
    );
    let _ = writeln!(
        json,
        "  \"allocation\": {{\"steady_state_pyramid_buffers_allocated\": {}, \
         \"steady_state_pyramid_buffers_reused\": {}}}",
        pooled_work.buffers_allocated, pooled_work.buffers_reused
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");
}
