//! Deterministic, jobs-bounded work-queue executor for the offline harness.
//!
//! [`parallel::map_bands`](crate::parallel) fans *one kernel call* across
//! row bands; this module is the coarser sibling: it runs a whole list of
//! independent work items (clip renders, training runs, per-clip scheme
//! evaluations) over a bounded worker pool. Like the band fan-out it is
//! built on `std::thread::scope` — the build environment is offline, so no
//! rayon — and it keeps the same three guarantees:
//!
//! 1. **Bit-identical results.** Items are claimed from a shared atomic
//!    counter (a contended queue), but every result is placed back into its
//!    item's slot, so the returned `Vec` is always in index order — exactly
//!    what the sequential loop produces, regardless of `jobs` or
//!    scheduling. Callers must pass closures that are pure functions of the
//!    item (true for everything seeded in this workspace).
//! 2. **Counter transparency.** Worker threads start with fresh
//!    thread-local [`crate::perf`] counters which are merged into the
//!    calling thread after the join.
//! 3. **Graceful degradation.** With `jobs <= 1` (or one item) the map runs
//!    inline on the calling thread with no spawn cost.
//!
//! # Example
//!
//! ```
//! use adavp_vision::exec::Executor;
//! let seq = Executor::sequential();
//! let par = Executor::new(4);
//! let items: Vec<u32> = (0..100).collect();
//! let a = seq.map(&items, |_, &v| v * v);
//! let b = par.map(&items, |_, &v| v * v);
//! assert_eq!(a, b); // index order, bit-identical
//! ```

use crate::perf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded pool of worker threads mapping closures over index ranges,
/// with results collected in index order.
///
/// `Executor` is a plain value (`Copy`): it carries only the worker budget,
/// and threads are scoped to each [`map`](Executor::map) call, so it can be
/// stored in configs and passed across crate boundaries freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor running up to `jobs` work items concurrently
    /// (`jobs = 0` is treated as 1).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The single-threaded executor (runs every map inline).
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// An executor sized to the host
    /// (`std::thread::available_parallelism`, 1 when unknown).
    pub fn available() -> Self {
        Self::new(crate::parallel::max_threads())
    }

    /// The concurrency bound this executor was built with.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether maps run inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.jobs == 1
    }

    /// Applies `f(index)` for every index in `0..len`, returning results in
    /// index order. Work items are claimed dynamically from a shared queue,
    /// so uneven item costs still load-balance across the pool.
    pub fn map_range<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.jobs.min(len);
        if workers <= 1 {
            return (0..len).map(f).collect();
        }

        let next = AtomicUsize::new(0);
        // Each thread drains the queue into a local (index, result) list;
        // results are scattered back into index-ordered slots after joining,
        // so claim order never leaks into the output.
        let drain = |_worker: usize| -> Vec<(usize, R)> {
            let mut local = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    return local;
                }
                local.push((i, f(i)));
            }
        };

        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(len, || None);
        let mut worker_counters: Vec<perf::KernelCounters> = Vec::new();
        std::thread::scope(|scope| {
            let drain = &drain;
            let handles: Vec<_> = (1..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let out = drain(w);
                        (out, perf::snapshot())
                    })
                })
                .collect();
            for (i, r) in drain(0) {
                slots[i] = Some(r);
            }
            for h in handles {
                let (out, counters) = h.join().expect("executor worker panicked");
                for (i, r) in out {
                    slots[i] = Some(r);
                }
                worker_counters.push(counters);
            }
        });
        for c in &worker_counters {
            perf::merge(c);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index produced a result"))
            .collect()
    }

    /// Applies `f(index, item)` to every item of `items`, returning results
    /// in item order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_range(items.len(), |i| f(i, &items[i]))
    }
}

impl Default for Executor {
    /// Defaults to sequential: parallelism is always an explicit opt-in.
    fn default() -> Self {
        Self::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_jobs_is_clamped() {
        assert_eq!(Executor::new(0).jobs(), 1);
        assert!(Executor::new(0).is_sequential());
    }

    #[test]
    fn map_handles_empty_and_single() {
        let ex = Executor::new(4);
        assert_eq!(ex.map(&[] as &[u8], |_, &v| v), Vec::<u8>::new());
        assert_eq!(ex.map(&[9u8], |i, &v| (i, v)), vec![(0, 9)]);
    }

    #[test]
    fn preserves_index_order_under_contended_queue() {
        // Many tiny items with deliberately uneven costs: workers race on
        // the claim counter and finish out of order, yet the output must be
        // exactly the sequential result.
        let items: Vec<u64> = (0..997).collect();
        let seq: Vec<(usize, u64)> = items.iter().enumerate().map(|(i, &v)| (i, v * 3)).collect();
        for jobs in [2, 3, 8, 32] {
            let par = Executor::new(jobs).map(&items, |i, &v| {
                // Skew work so late indices finish first on some workers.
                let spins = (v % 7) * 400;
                let mut acc = 0u64;
                for k in 0..spins {
                    acc = acc.wrapping_add(k);
                }
                std::hint::black_box(acc);
                (i, v * 3)
            });
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn all_items_claimed_exactly_once() {
        let n = 500;
        let claims: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let _ = Executor::new(8).map_range(n, |i| {
            claims[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i} claim count");
        }
    }

    #[test]
    fn worker_perf_counters_merge_into_caller() {
        perf::reset();
        let _ = Executor::new(4).map_range(40, |_| {
            perf::record(|c| c.lk_iterations += 1);
        });
        assert_eq!(perf::snapshot().lk_iterations, 40);
    }

    #[test]
    fn sequential_executor_runs_inline() {
        let tid = std::thread::current().id();
        let seen = Executor::sequential().map_range(5, |_| std::thread::current().id());
        assert!(seen.iter().all(|&t| t == tid));
    }
}
