//! FAST corner detection (Features from Accelerated Segment Test).
//!
//! The AdaVP paper evaluates several feature detectors — SIFT, SURF, *good
//! features to track*, FAST, ORB — before settling on Shi-Tomasi (§IV-C).
//! This module provides FAST-N so the tracker can be ablated against the
//! paper's alternative: a pixel is a corner when at least `arc_length`
//! contiguous pixels on a Bresenham circle of radius 3 are all brighter
//! than `p + threshold` or all darker than `p - threshold`; corners are
//! scored by the summed contiguous-arc contrast and thinned with 3x3
//! non-maximum suppression plus the same min-distance grid used by
//! Shi-Tomasi.

use crate::features::Corner;
use crate::geometry::{BoundingBox, Point2};
use crate::image::GrayImage;
use crate::perf;

/// The 16 Bresenham circle offsets (radius 3), clockwise from 12 o'clock.
const CIRCLE: [(i64, i64); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// Parameters for [`fast_corners`].
#[derive(Debug, Clone, PartialEq)]
pub struct FastParams {
    /// Intensity contrast threshold `t`.
    pub threshold: u8,
    /// Required contiguous arc length (9 = FAST-9, 12 = FAST-12).
    pub arc_length: usize,
    /// Maximum number of corners returned (strongest first; 0 = unlimited).
    pub max_corners: usize,
    /// Minimum Euclidean distance between returned corners.
    pub min_distance: f32,
}

impl Default for FastParams {
    fn default() -> Self {
        Self {
            threshold: 22,
            arc_length: 9,
            max_corners: 100,
            min_distance: 4.0,
        }
    }
}

/// Classification of a circle pixel relative to the centre.
#[derive(Clone, Copy, PartialEq)]
enum Rel {
    Brighter,
    Darker,
    Similar,
}

fn segment_score(img: &GrayImage, x: i64, y: i64, params: &FastParams) -> Option<f32> {
    let p = img.get_clamped(x, y) as i32;
    let t = params.threshold as i32;
    let mut rel = [Rel::Similar; 16];
    for (i, (dx, dy)) in CIRCLE.iter().enumerate() {
        let v = img.get_clamped(x + dx, y + dy) as i32;
        rel[i] = if v >= p + t {
            Rel::Brighter
        } else if v <= p - t {
            Rel::Darker
        } else {
            Rel::Similar
        };
    }
    // Longest contiguous run (circularly) of Brighter and of Darker.
    for kind in [Rel::Brighter, Rel::Darker] {
        let mut best_run = 0usize;
        let mut run = 0usize;
        // Walk twice around the circle to handle wrap-around runs.
        for i in 0..32 {
            if rel[i % 16] == kind {
                run += 1;
                best_run = best_run.max(run);
                if best_run >= 16 {
                    break;
                }
            } else {
                run = 0;
            }
        }
        if best_run >= params.arc_length {
            // Score: total contrast of all pixels of this kind.
            let mut score = 0.0f32;
            for (i, (dx, dy)) in CIRCLE.iter().enumerate() {
                if rel[i] == kind {
                    let v = img.get_clamped(x + dx, y + dy) as i32;
                    score += ((v - p).abs() - t).max(0) as f32;
                }
            }
            return Some(score);
        }
    }
    None
}

/// Detects FAST corners in `img`, optionally restricted to `mask` boxes.
///
/// Returns corners sorted by descending score after non-maximum suppression
/// and min-distance thinning. The [`Corner::response`] field carries the
/// FAST arc-contrast score (not comparable to Shi-Tomasi responses).
///
/// # Example
///
/// ```
/// use adavp_vision::image::GrayImage;
/// use adavp_vision::fast::{fast_corners, FastParams};
/// let img = GrayImage::from_fn(48, 48, |x, y| if x > 20 && y > 20 { 220 } else { 20 });
/// let corners = fast_corners(&img, &FastParams::default(), None);
/// assert!(corners.iter().any(|c| (c.point.x - 21.0).abs() < 4.0));
/// ```
pub fn fast_corners(
    img: &GrayImage,
    params: &FastParams,
    mask: Option<&[BoundingBox]>,
) -> Vec<Corner> {
    let w = img.width();
    let h = img.height();
    if w < 8 || h < 8 {
        return Vec::new();
    }
    let inside_mask = |x: u32, y: u32| -> bool {
        match mask {
            None => true,
            Some(boxes) => {
                let p = Point2::new(x as f32, y as f32);
                boxes.iter().any(|b| b.contains(p))
            }
        }
    };

    let _timer = perf::ScopedTimer::new(|c| &mut c.corner_ns);
    perf::record(|c| c.corner_scans += 1);

    // Score map for NMS, computed in parallel row bands (each band owns a
    // disjoint row range, stitched back in order: identical to the
    // sequential scan for any band count).
    let y_end = h.saturating_sub(3);
    let scan_rows = y_end.saturating_sub(3) as usize;
    let per_band =
        crate::parallel::map_bands(scan_rows, crate::parallel::scan_bands(scan_rows), |s, e| {
            let mut band = vec![0.0f32; (e - s) * w as usize];
            let mut band_any = false;
            for (bi, y) in (3 + s as u32..3 + e as u32).enumerate() {
                for x in 3..w.saturating_sub(3) {
                    if !inside_mask(x, y) {
                        continue;
                    }
                    if let Some(sc) = segment_score(img, x as i64, y as i64, params) {
                        band[bi * w as usize + x as usize] = sc;
                        band_any = true;
                    }
                }
            }
            (band, band_any)
        });
    let mut scores = vec![0.0f32; w as usize * h as usize];
    let mut any = false;
    let mut row = 3usize;
    for (band, band_any) in per_band {
        let rows = band.len() / w as usize;
        scores[row * w as usize..(row + rows) * w as usize].copy_from_slice(&band);
        row += rows;
        any |= band_any;
    }
    if !any {
        return Vec::new();
    }

    // 3x3 non-maximum suppression.
    let mut cands: Vec<(f32, u32, u32)> = Vec::new();
    for y in 3..h.saturating_sub(3) {
        for x in 3..w.saturating_sub(3) {
            let s = scores[(y * w + x) as usize];
            if s <= 0.0 {
                continue;
            }
            let mut is_max = true;
            'nms: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = (x as i64 + dx) as u32;
                    let ny = (y as i64 + dy) as u32;
                    let ns = scores[(ny * w + nx) as usize];
                    if ns > s || (ns == s && (ny, nx) < (y, x)) {
                        is_max = false;
                        break 'nms;
                    }
                }
            }
            if is_max {
                cands.push((s, x, y));
            }
        }
    }
    cands.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.2, a.1).cmp(&(b.2, b.1)))
    });

    // Min-distance thinning (greedy, strongest first).
    let min_d2 = params.min_distance * params.min_distance;
    let mut out: Vec<Corner> = Vec::new();
    for (score, x, y) in cands {
        let p = Point2::new(x as f32, y as f32);
        if out.iter().all(|c| c.point.distance_sq(p) >= min_d2) {
            out.push(Corner {
                point: p,
                response: score,
            });
            if params.max_corners != 0 && out.len() >= params.max_corners {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bright_square(w: u32, h: u32, x0: u32, y0: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| if x >= x0 && y >= y0 { 220 } else { 20 })
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::from_fn(32, 32, |_, _| 99);
        assert!(fast_corners(&img, &FastParams::default(), None).is_empty());
    }

    #[test]
    fn tiny_image_is_safe() {
        let img = GrayImage::new(4, 4);
        assert!(fast_corners(&img, &FastParams::default(), None).is_empty());
    }

    #[test]
    fn square_corner_detected() {
        let img = bright_square(48, 48, 20, 20);
        let corners = fast_corners(&img, &FastParams::default(), None);
        assert!(!corners.is_empty());
        assert!(
            corners
                .iter()
                .any(|c| (c.point.x - 20.0).abs() <= 3.0 && (c.point.y - 20.0).abs() <= 3.0),
            "corner of the square not found: {corners:?}"
        );
    }

    #[test]
    fn edge_is_not_a_corner() {
        // A straight vertical edge: FAST-9 must reject interior edge pixels
        // (only ~8 contiguous circle pixels differ).
        let img = GrayImage::from_fn(48, 48, |x, _| if x >= 24 { 220 } else { 20 });
        let corners = fast_corners(&img, &FastParams::default(), None);
        for c in &corners {
            assert!(
                c.point.y < 6.0 || c.point.y > 41.0,
                "edge interior flagged as corner at {}",
                c.point
            );
        }
    }

    #[test]
    fn dark_corners_detected_too() {
        // Dark square on bright background (the Darker branch).
        let img = GrayImage::from_fn(48, 48, |x, y| if x >= 20 && y >= 20 { 20 } else { 220 });
        let corners = fast_corners(&img, &FastParams::default(), None);
        assert!(!corners.is_empty());
    }

    #[test]
    fn threshold_filters_low_contrast() {
        let lowc = GrayImage::from_fn(48, 48, |x, y| if x >= 20 && y >= 20 { 130 } else { 120 });
        let strict = FastParams {
            threshold: 30,
            ..Default::default()
        };
        assert!(fast_corners(&lowc, &strict, None).is_empty());
        let loose = FastParams {
            threshold: 4,
            ..Default::default()
        };
        assert!(!fast_corners(&lowc, &loose, None).is_empty());
    }

    #[test]
    fn mask_and_limits_respected() {
        let img = bright_square(64, 64, 30, 30);
        let mask = [BoundingBox::new(0.0, 0.0, 20.0, 20.0)];
        // The square corner is outside the mask: nothing found.
        assert!(fast_corners(&img, &FastParams::default(), Some(&mask)).is_empty());

        let checker = GrayImage::from_fn(64, 64, |x, y| {
            if ((x / 8) + (y / 8)) % 2 == 0 {
                210
            } else {
                40
            }
        });
        let limited = FastParams {
            max_corners: 3,
            ..Default::default()
        };
        let corners = fast_corners(&checker, &limited, None);
        assert!(corners.len() <= 3);
        // Sorted by descending score.
        for w in corners.windows(2) {
            assert!(w[0].response >= w[1].response);
        }
    }

    #[test]
    fn min_distance_enforced() {
        let checker = GrayImage::from_fn(64, 64, |x, y| {
            if ((x / 8) + (y / 8)) % 2 == 0 {
                210
            } else {
                40
            }
        });
        let params = FastParams {
            max_corners: 0,
            min_distance: 9.0,
            ..Default::default()
        };
        let corners = fast_corners(&checker, &params, None);
        for i in 0..corners.len() {
            for j in (i + 1)..corners.len() {
                assert!(corners[i].point.distance(corners[j].point) >= 9.0);
            }
        }
    }
}
