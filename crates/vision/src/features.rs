//! Shi-Tomasi "good features to track" corner detection.
//!
//! Implements the detector from Shi & Tomasi (1993) that the AdaVP paper uses
//! to pick trackable points inside each detected bounding box: the minimum
//! eigenvalue of the 2x2 structure tensor over a window, thresholded
//! relative to the strongest response, followed by greedy non-maximum
//! suppression with a minimum inter-corner distance — the same contract as
//! OpenCV's `goodFeaturesToTrack`.

use crate::geometry::{BoundingBox, Point2};
use crate::gradient::{scharr_gradients, GradientField};
use crate::image::GrayImage;
use crate::perf;

/// A detected corner: location plus its Shi-Tomasi response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Pixel location of the corner (integer grid, stored as float so it can
    /// be fed straight into sub-pixel flow tracking).
    pub point: Point2,
    /// Minimum eigenvalue of the structure tensor at this pixel — larger
    /// means a stronger, more trackable corner.
    pub response: f32,
}

/// Parameters for [`good_features_to_track`].
#[derive(Debug, Clone, PartialEq)]
pub struct GoodFeaturesParams {
    /// Maximum number of corners to return (strongest first). 0 means no limit.
    pub max_corners: usize,
    /// Corners weaker than `quality_level * strongest_response` are rejected.
    pub quality_level: f32,
    /// Minimum Euclidean distance between returned corners, in pixels.
    pub min_distance: f32,
    /// Half-width of the structure-tensor window (window side = 2*block+1).
    pub block_radius: u32,
}

impl Default for GoodFeaturesParams {
    fn default() -> Self {
        Self {
            max_corners: 100,
            quality_level: 0.05,
            min_distance: 4.0,
            block_radius: 1,
        }
    }
}

/// Detects Shi-Tomasi corners in `img`.
///
/// When `mask` is given, only pixels inside at least one of the mask boxes
/// are considered — the AdaVP tracker passes the YOLO-detected bounding boxes
/// here so features are only extracted on objects (§V of the paper).
///
/// Returns corners sorted by descending response, after quality filtering
/// and minimum-distance suppression.
///
/// # Example
///
/// ```
/// use adavp_vision::image::GrayImage;
/// use adavp_vision::features::{good_features_to_track, GoodFeaturesParams};
/// let img = GrayImage::from_fn(64, 64, |x, y| if x > 30 && y > 30 { 220 } else { 10 });
/// let corners = good_features_to_track(&img, &GoodFeaturesParams::default(), None);
/// // The single corner of the bright square is found.
/// assert!(corners.iter().any(|c| (c.point.x - 30.0).abs() < 3.0 && (c.point.y - 30.0).abs() < 3.0));
/// ```
pub fn good_features_to_track(
    img: &GrayImage,
    params: &GoodFeaturesParams,
    mask: Option<&[BoundingBox]>,
) -> Vec<Corner> {
    if img.width() < 3 || img.height() < 3 {
        return Vec::new();
    }
    let grad = scharr_gradients(img);
    good_features_from_gradients(&grad, params, mask)
}

/// [`good_features_to_track`] over a precomputed Scharr [`GradientField`].
///
/// The object tracker extracts features from the same frame whose pyramid
/// it keeps as the Lucas-Kanade reference; passing the pyramid's cached
/// level-0 gradients ([`crate::pyramid::Pyramid::gradients`]) here avoids a
/// second full-frame Scharr pass per detection. Results are identical to
/// [`good_features_to_track`] on the image the field was computed from.
pub fn good_features_from_gradients(
    grad: &GradientField,
    params: &GoodFeaturesParams,
    mask: Option<&[BoundingBox]>,
) -> Vec<Corner> {
    let _timer = perf::ScopedTimer::new(|c| &mut c.corner_ns);
    perf::record(|c| c.corner_scans += 1);
    let w = grad.width();
    let h = grad.height();
    if w < 3 || h < 3 {
        return Vec::new();
    }
    let r = params.block_radius as i64;
    let margin = params.block_radius + 1;

    let inside_mask = |x: u32, y: u32| -> bool {
        match mask {
            None => true,
            Some(boxes) => {
                let p = Point2::new(x as f32, y as f32);
                boxes.iter().any(|b| b.contains(p))
            }
        }
    };

    // Min-eigenvalue response map, scanned in parallel row bands (band
    // results concatenate back to exact raster order, so output is
    // independent of the band count). Within a band, each row is evaluated
    // as contiguous x-spans through [`min_eig_span`] — row slices hoisted
    // once per span, the 3x3 window fully unrolled — instead of per-pixel
    // indexed accessor calls; the per-pixel accumulation order is
    // unchanged, so responses are bit-identical to the retained
    // [`good_features_from_gradients_reference`]. With a mask, the spans
    // shrink to a conservative superset of the masked columns and the
    // exact `inside_mask` test still gates every emitted candidate.
    let y_end = h.saturating_sub(margin);
    let x_end = w.saturating_sub(margin);
    let scan_rows = y_end.saturating_sub(margin) as usize;
    let per_band =
        crate::parallel::map_bands(scan_rows, crate::parallel::scan_bands(scan_rows), |s, e| {
            let mut band: Vec<(f32, u32, u32)> = Vec::new();
            let mut spans: Vec<(u32, u32)> = Vec::new();
            for y in margin + s as u32..margin + e as u32 {
                spans.clear();
                match mask {
                    None => spans.push((margin, x_end)),
                    Some(boxes) => mask_row_spans(boxes, y, margin, x_end, &mut spans),
                }
                for &(x0, x1) in &spans {
                    min_eig_span(grad, r, y, x0, x1, |x, min_eig| {
                        if min_eig > 0.0 && inside_mask(x, y) {
                            band.push((min_eig, x, y));
                        }
                    });
                }
            }
            band
        });
    let mut responses: Vec<(f32, u32, u32)> = Vec::new();
    for band in per_band {
        responses.extend(band);
    }
    if responses.is_empty() {
        return Vec::new();
    }
    let max_response = responses
        .iter()
        .fold(0.0f32, |acc, &(resp, _, _)| acc.max(resp));

    let threshold = max_response * params.quality_level;
    responses.retain(|&(resp, _, _)| resp >= threshold);

    // Greedy min-distance suppression on a coarse grid for O(n) neighbor checks.
    let cell = params.min_distance.max(1.0);
    let grid_w = (w as f32 / cell).ceil() as usize + 1;
    let grid_h = (h as f32 / cell).ceil() as usize + 1;
    let mut grid: Vec<Vec<Point2>> = vec![Vec::new(); grid_w * grid_h];
    let min_d2 = params.min_distance * params.min_distance;

    let mut out = Vec::new();
    let mut ranked = RankedCandidates::new(responses, params.max_corners);
    while let Some((resp, x, y)) = ranked.next() {
        let p = Point2::new(x as f32, y as f32);
        let cx = (p.x / cell) as usize;
        let cy = (p.y / cell) as usize;
        let mut ok = true;
        'outer: for ny in cy.saturating_sub(1)..=(cy + 1).min(grid_h - 1) {
            for nx in cx.saturating_sub(1)..=(cx + 1).min(grid_w - 1) {
                for q in &grid[ny * grid_w + nx] {
                    if p.distance_sq(*q) < min_d2 {
                        ok = false;
                        break 'outer;
                    }
                }
            }
        }
        if ok {
            grid[cy * grid_w + cx].push(p);
            out.push(Corner {
                point: p,
                response: resp,
            });
            if params.max_corners != 0 && out.len() >= params.max_corners {
                break;
            }
        }
    }
    out
}

/// Candidate ordering shared by selection and the reference full sort:
/// strongest response first, ties broken by raster order. A *total* order
/// over any real candidate set — responses are finite (quality filtering
/// rejects non-finite values implicitly because `max_response` is finite)
/// and `(y, x)` pairs are unique — so unstable sorting and partitioning
/// reproduce the stable full-sort sequence exactly.
fn rank_cmp(a: &(f32, u32, u32), b: &(f32, u32, u32)) -> std::cmp::Ordering {
    b.0.partial_cmp(&a.0)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| (a.2, a.1).cmp(&(b.2, b.1)))
}

/// Yields candidates in exactly the order a full descending sort would,
/// without sorting the whole set: the unsorted tail is partitioned with
/// `select_nth_unstable_by` in geometrically growing chunks and only each
/// chunk is sorted. Selecting the ~`max_corners` strongest of `n`
/// candidates costs O(n + k log k) instead of the O(n log n) full sort that
/// dominated the Shi-Tomasi profile (ROADMAP item 5), while the emitted
/// sequence — and therefore the NMS result — stays bit-identical because
/// [`rank_cmp`] is a total order (see its docs). `max_corners == 0` (no
/// limit) consumes every chunk, which degrades gracefully to a full sort
/// in pieces.
struct RankedCandidates {
    items: Vec<(f32, u32, u32)>,
    sorted_upto: usize,
    cursor: usize,
    chunk: usize,
}

impl RankedCandidates {
    fn new(items: Vec<(f32, u32, u32)>, max_corners: usize) -> Self {
        // NMS rejects some candidates, so over-provision the first chunk;
        // subsequent chunks double so the worst case stays O(n).
        let chunk = max_corners.max(64).saturating_mul(2);
        Self {
            items,
            sorted_upto: 0,
            cursor: 0,
            chunk,
        }
    }

    fn next(&mut self) -> Option<(f32, u32, u32)> {
        if self.cursor == self.sorted_upto {
            if self.sorted_upto == self.items.len() {
                return None;
            }
            let tail = &mut self.items[self.sorted_upto..];
            let n = self.chunk.min(tail.len());
            if n < tail.len() {
                tail.select_nth_unstable_by(n - 1, rank_cmp);
            }
            tail[..n].sort_unstable_by(rank_cmp);
            self.sorted_upto += n;
            self.chunk = self.chunk.saturating_mul(2);
        }
        let item = self.items[self.cursor];
        self.cursor += 1;
        Some(item)
    }
}

/// Evaluates the Shi-Tomasi minimum eigenvalue for every pixel
/// `x0 <= x < x1` of row `y`, calling `emit(x, min_eig)` in increasing-`x`
/// order.
///
/// The `block_radius == 1` case (the tracker's default, and the 7 ms
/// dominator at 256x256) hoists the six gradient row slices once and fully
/// unrolls the 3x3 window so the compiler vectorizes across pixels; the
/// `sxx`/`sxy`/`syy` accumulation order matches the reference per-pixel
/// loop statement for statement, so responses are bit-identical. Larger
/// radii take a generic path with per-`dy` hoisted rows, same order.
#[inline]
fn min_eig_span(
    grad: &GradientField,
    r: i64,
    y: u32,
    x0: u32,
    x1: u32,
    mut emit: impl FnMut(u32, f32),
) {
    if x0 >= x1 {
        return;
    }
    if r == 1 {
        let lo = (x0 - 1) as usize;
        let hi = (x1 + 1) as usize;
        let gxa = &grad.gx_row(y - 1)[lo..hi];
        let gya = &grad.gy_row(y - 1)[lo..hi];
        let gxb = &grad.gx_row(y)[lo..hi];
        let gyb = &grad.gy_row(y)[lo..hi];
        let gxc = &grad.gx_row(y + 1)[lo..hi];
        let gyc = &grad.gy_row(y + 1)[lo..hi];
        for i in 0..(x1 - x0) as usize {
            let mut sxx = 0.0f32;
            let mut sxy = 0.0f32;
            let mut syy = 0.0f32;
            macro_rules! tap {
                ($gxr:ident, $gyr:ident, $j:expr) => {{
                    let gx = $gxr[$j];
                    let gy = $gyr[$j];
                    sxx += gx * gx;
                    sxy += gx * gy;
                    syy += gy * gy;
                }};
            }
            tap!(gxa, gya, i);
            tap!(gxa, gya, i + 1);
            tap!(gxa, gya, i + 2);
            tap!(gxb, gyb, i);
            tap!(gxb, gyb, i + 1);
            tap!(gxb, gyb, i + 2);
            tap!(gxc, gyc, i);
            tap!(gxc, gyc, i + 1);
            tap!(gxc, gyc, i + 2);
            // Minimum eigenvalue of [[sxx, sxy], [sxy, syy]].
            let trace_half = (sxx + syy) / 2.0;
            let det_term = ((sxx - syy) / 2.0).powi(2) + sxy * sxy;
            emit(x0 + i as u32, trace_half - det_term.sqrt());
        }
    } else {
        for x in x0..x1 {
            let mut sxx = 0.0f32;
            let mut sxy = 0.0f32;
            let mut syy = 0.0f32;
            for dy in -r..=r {
                let row_y = (y as i64 + dy) as u32;
                let gxr = grad.gx_row(row_y);
                let gyr = grad.gy_row(row_y);
                for dx in -r..=r {
                    let xi = (x as i64 + dx) as usize;
                    let gx = gxr[xi];
                    let gy = gyr[xi];
                    sxx += gx * gx;
                    sxy += gx * gy;
                    syy += gy * gy;
                }
            }
            let trace_half = (sxx + syy) / 2.0;
            let det_term = ((sxx - syy) / 2.0).powi(2) + sxy * sxy;
            emit(x, trace_half - det_term.sqrt());
        }
    }
}

/// Collects the sorted, disjoint x-spans of row `y` (clamped to
/// `[margin, x_end)`) that could contain a masked pixel: a *conservative
/// superset* of `BoundingBox::contains` coverage, widened by a pixel on
/// each side so floating-point edge rounding can never exclude a pixel the
/// exact per-pixel test would accept. Callers re-check every candidate
/// with the exact test, so the widening only costs a few evaluations.
fn mask_row_spans(
    boxes: &[BoundingBox],
    y: u32,
    margin: u32,
    x_end: u32,
    out: &mut Vec<(u32, u32)>,
) {
    let yf = y as f32;
    for b in boxes {
        if yf + 1.0 < b.top || yf - 1.0 >= b.top + b.height {
            continue;
        }
        let lo = ((b.left - 1.0).floor().max(0.0) as i64).clamp(margin as i64, x_end as i64);
        let hi =
            (((b.left + b.width + 2.0).ceil()).max(0.0) as i64).clamp(margin as i64, x_end as i64);
        if lo < hi {
            out.push((lo as u32, hi as u32));
        }
    }
    out.sort_unstable();
    // Merge overlapping/adjacent spans so each pixel is scanned once and
    // emission order stays strictly increasing in x.
    let mut merged: usize = 0;
    for i in 1..out.len() {
        if out[i].0 <= out[merged].1 {
            out[merged].1 = out[merged].1.max(out[i].1);
        } else {
            merged += 1;
            out[merged] = out[i];
        }
    }
    out.truncate(if out.is_empty() { 0 } else { merged + 1 });
}

/// The pre-vectorization [`good_features_from_gradients`]: per-pixel
/// indexed gradient accessors, no span hoisting. Retained verbatim as the
/// baseline for parity tests and benchmarks; produces identical corners.
pub fn good_features_from_gradients_reference(
    grad: &GradientField,
    params: &GoodFeaturesParams,
    mask: Option<&[BoundingBox]>,
) -> Vec<Corner> {
    let _timer = perf::ScopedTimer::new(|c| &mut c.corner_ns);
    perf::record(|c| c.corner_scans += 1);
    let w = grad.width();
    let h = grad.height();
    if w < 3 || h < 3 {
        return Vec::new();
    }
    let r = params.block_radius as i64;
    let margin = params.block_radius + 1;

    let inside_mask = |x: u32, y: u32| -> bool {
        match mask {
            None => true,
            Some(boxes) => {
                let p = Point2::new(x as f32, y as f32);
                boxes.iter().any(|b| b.contains(p))
            }
        }
    };

    let y_end = h.saturating_sub(margin);
    let scan_rows = y_end.saturating_sub(margin) as usize;
    let per_band =
        crate::parallel::map_bands(scan_rows, crate::parallel::scan_bands(scan_rows), |s, e| {
            let mut band: Vec<(f32, u32, u32)> = Vec::new();
            for y in margin + s as u32..margin + e as u32 {
                for x in margin..w.saturating_sub(margin) {
                    if !inside_mask(x, y) {
                        continue;
                    }
                    let mut sxx = 0.0f32;
                    let mut sxy = 0.0f32;
                    let mut syy = 0.0f32;
                    for dy in -r..=r {
                        for dx in -r..=r {
                            let gx = grad.gx((x as i64 + dx) as u32, (y as i64 + dy) as u32);
                            let gy = grad.gy((x as i64 + dx) as u32, (y as i64 + dy) as u32);
                            sxx += gx * gx;
                            sxy += gx * gy;
                            syy += gy * gy;
                        }
                    }
                    let trace_half = (sxx + syy) / 2.0;
                    let det_term = ((sxx - syy) / 2.0).powi(2) + sxy * sxy;
                    let min_eig = trace_half - det_term.sqrt();
                    if min_eig > 0.0 {
                        band.push((min_eig, x, y));
                    }
                }
            }
            band
        });
    let mut responses: Vec<(f32, u32, u32)> = Vec::new();
    for band in per_band {
        responses.extend(band);
    }
    if responses.is_empty() {
        return Vec::new();
    }
    let max_response = responses
        .iter()
        .fold(0.0f32, |acc, &(resp, _, _)| acc.max(resp));

    let threshold = max_response * params.quality_level;
    responses.retain(|&(resp, _, _)| resp >= threshold);
    responses.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.2, a.1).cmp(&(b.2, b.1)))
    });

    let cell = params.min_distance.max(1.0);
    let grid_w = (w as f32 / cell).ceil() as usize + 1;
    let grid_h = (h as f32 / cell).ceil() as usize + 1;
    let mut grid: Vec<Vec<Point2>> = vec![Vec::new(); grid_w * grid_h];
    let min_d2 = params.min_distance * params.min_distance;

    let mut out = Vec::new();
    for (resp, x, y) in responses {
        let p = Point2::new(x as f32, y as f32);
        let cx = (p.x / cell) as usize;
        let cy = (p.y / cell) as usize;
        let mut ok = true;
        'outer: for ny in cy.saturating_sub(1)..=(cy + 1).min(grid_h - 1) {
            for nx in cx.saturating_sub(1)..=(cx + 1).min(grid_w - 1) {
                for q in &grid[ny * grid_w + nx] {
                    if p.distance_sq(*q) < min_d2 {
                        ok = false;
                        break 'outer;
                    }
                }
            }
        }
        if ok {
            grid[cy * grid_w + cx].push(p);
            out.push(Corner {
                point: p,
                response: resp,
            });
            if params.max_corners != 0 && out.len() >= params.max_corners {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker(w: u32, h: u32, cell: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            if ((x / cell) + (y / cell)).is_multiple_of(2) {
                220
            } else {
                30
            }
        })
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::from_fn(32, 32, |_, _| 120);
        let corners = good_features_to_track(&img, &GoodFeaturesParams::default(), None);
        assert!(corners.is_empty());
    }

    #[test]
    fn tiny_image_is_safe() {
        let img = GrayImage::new(2, 2);
        assert!(good_features_to_track(&img, &GoodFeaturesParams::default(), None).is_empty());
    }

    #[test]
    fn checkerboard_yields_many_corners() {
        let img = checker(64, 64, 8);
        let corners = good_features_to_track(&img, &GoodFeaturesParams::default(), None);
        assert!(corners.len() >= 20, "got {} corners", corners.len());
        // Sorted by descending response.
        for pair in corners.windows(2) {
            assert!(pair[0].response >= pair[1].response);
        }
    }

    #[test]
    fn max_corners_respected() {
        let img = checker(64, 64, 8);
        let params = GoodFeaturesParams {
            max_corners: 5,
            ..Default::default()
        };
        let corners = good_features_to_track(&img, &params, None);
        assert_eq!(corners.len(), 5);
    }

    #[test]
    fn min_distance_enforced() {
        let img = checker(64, 64, 8);
        let params = GoodFeaturesParams {
            max_corners: 0,
            min_distance: 7.0,
            ..Default::default()
        };
        let corners = good_features_to_track(&img, &params, None);
        for i in 0..corners.len() {
            for j in (i + 1)..corners.len() {
                assert!(
                    corners[i].point.distance(corners[j].point) >= 7.0,
                    "corners {i} and {j} too close"
                );
            }
        }
    }

    #[test]
    fn mask_restricts_detection() {
        let img = checker(64, 64, 8);
        let mask = [BoundingBox::new(0.0, 0.0, 24.0, 24.0)];
        let corners = good_features_to_track(&img, &GoodFeaturesParams::default(), Some(&mask));
        assert!(!corners.is_empty());
        for c in &corners {
            assert!(mask[0].contains(c.point), "corner {} outside mask", c.point);
        }
    }

    #[test]
    fn empty_mask_yields_nothing() {
        let img = checker(64, 64, 8);
        let corners = good_features_to_track(&img, &GoodFeaturesParams::default(), Some(&[]));
        assert!(corners.is_empty());
    }

    #[test]
    fn single_corner_localised() {
        // One bright square corner at (40, 40).
        let img = GrayImage::from_fn(80, 80, |x, y| if x >= 40 && y >= 40 { 200 } else { 20 });
        let corners = good_features_to_track(&img, &GoodFeaturesParams::default(), None);
        assert!(!corners.is_empty());
        let best = corners[0];
        assert!((best.point.x - 40.0).abs() <= 2.0, "x = {}", best.point.x);
        assert!((best.point.y - 40.0).abs() <= 2.0, "y = {}", best.point.y);
    }

    #[test]
    fn from_gradients_matches_full_detection() {
        let img = checker(64, 64, 8);
        let grad = scharr_gradients(&img);
        let params = GoodFeaturesParams::default();
        let mask = [BoundingBox::new(4.0, 4.0, 52.0, 52.0)];
        for m in [None, Some(&mask[..])] {
            let a = good_features_to_track(&img, &params, m);
            let b = good_features_from_gradients(&grad, &params, m);
            assert_eq!(a, b, "gradient-reusing path must match exactly");
        }
    }

    #[test]
    fn span_scan_matches_reference_bit_for_bit() {
        let img = GrayImage::from_fn(64, 48, |x, y| {
            ((x.wrapping_mul(113) ^ y.wrapping_mul(59)).wrapping_add(x * y / 3)) as u8
        });
        let grad = scharr_gradients(&img);
        let masks: [Option<&[BoundingBox]>; 4] = [
            None,
            Some(&[BoundingBox::new(4.0, 4.0, 30.0, 20.0)]),
            // Overlapping + fractional-edge boxes exercise span merging
            // and the conservative widening.
            Some(&[
                BoundingBox::new(10.5, 3.25, 20.0, 18.5),
                BoundingBox::new(25.0, 10.0, 30.0, 30.0),
                BoundingBox::new(-5.0, -5.0, 12.0, 100.0),
            ]),
            Some(&[]),
        ];
        for radius in [1u32, 2] {
            let params = GoodFeaturesParams {
                max_corners: 0,
                block_radius: radius,
                ..Default::default()
            };
            for m in masks {
                let fast = good_features_from_gradients(&grad, &params, m);
                let reference = good_features_from_gradients_reference(&grad, &params, m);
                assert_eq!(fast, reference, "diverged for radius {radius}, mask {m:?}");
            }
        }
    }

    #[test]
    fn partial_selection_matches_full_sort_reference() {
        // The reference keeps the original full `sort_by`; the optimized
        // path ranks candidates through chunked `select_nth_unstable_by`.
        // Equality across a budget sweep — including budgets smaller than,
        // straddling, and larger than the candidate count, plus the
        // unlimited case — pins the selection rewrite to the full sort bit
        // for bit (ordering, responses, and NMS survivors all included).
        let img = GrayImage::from_fn(96, 80, |x, y| {
            ((x.wrapping_mul(97) ^ y.wrapping_mul(41)).wrapping_add((x + 2) * (y + 3) / 5)) as u8
        });
        let grad = scharr_gradients(&img);
        let mask = [
            BoundingBox::new(6.0, 6.0, 40.0, 30.0),
            BoundingBox::new(30.5, 20.25, 50.0, 50.0),
        ];
        for max_corners in [0usize, 1, 3, 7, 33, 100, 500, 10_000] {
            let params = GoodFeaturesParams {
                max_corners,
                quality_level: 0.01,
                ..Default::default()
            };
            for m in [None, Some(&mask[..])] {
                let fast = good_features_from_gradients(&grad, &params, m);
                let reference = good_features_from_gradients_reference(&grad, &params, m);
                assert_eq!(fast, reference, "diverged at max_corners {max_corners}");
            }
        }
    }

    #[test]
    fn corner_scan_counted() {
        let img = checker(32, 32, 8);
        crate::perf::reset();
        let _ = good_features_to_track(&img, &GoodFeaturesParams::default(), None);
        let s = crate::perf::snapshot();
        assert_eq!(s.corner_scans, 1);
        assert_eq!(s.gradient_fields, 1);
    }

    #[test]
    fn quality_level_filters_weak_corners() {
        // One strong corner (high contrast) and one weak corner (low contrast).
        let img = GrayImage::from_fn(96, 48, |x, y| {
            if x < 48 {
                if x >= 20 && y >= 20 {
                    255
                } else {
                    0
                }
            } else if x >= 68 && y >= 20 {
                60
            } else {
                50
            }
        });
        let loose = GoodFeaturesParams {
            quality_level: 0.001,
            ..Default::default()
        };
        let strict = GoodFeaturesParams {
            quality_level: 0.5,
            ..Default::default()
        };
        let all = good_features_to_track(&img, &loose, None);
        let strong = good_features_to_track(&img, &strict, None);
        assert!(all.len() > strong.len());
        // The strict set only contains corners near the strong square.
        for c in &strong {
            assert!(c.point.x < 60.0, "weak corner survived: {}", c.point);
        }
    }
}
