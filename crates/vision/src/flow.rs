//! Pyramidal Lucas-Kanade sparse optical flow.
//!
//! Implements the iterative Lucas-Kanade method (Lucas & Kanade 1981; Bouguet
//! 2000 pyramidal formulation) used by the AdaVP object tracker to follow
//! Shi-Tomasi features between frames. For each feature the solver:
//!
//! 1. builds Gaussian pyramids of both frames,
//! 2. starting at the coarsest level, solves the 2x2 normal equations
//!    `G d = b` over a window around the feature, iterating Newton steps
//!    until the update is below [`LkParams::epsilon`],
//! 3. propagates the displacement (doubled) to the next finer level.
//!
//! A track is reported lost (`found == false`) when the structure tensor is
//! degenerate (flat/aperture region), when the point leaves the image, or
//! when the final per-pixel residual exceeds [`LkParams::max_residual`].

use crate::geometry::{Point2, Vec2};
use crate::gradient::scharr_gradients;
use crate::image::GrayImage;
use crate::pyramid::Pyramid;

/// Parameters for [`PyramidalLk`].
#[derive(Debug, Clone, PartialEq)]
pub struct LkParams {
    /// Half-width of the tracking window (window side = 2*radius+1 pixels).
    pub window_radius: u32,
    /// Number of pyramid levels (1 = plain single-level LK).
    pub pyramid_levels: u32,
    /// Maximum Newton iterations per pyramid level.
    pub max_iterations: u32,
    /// Stop iterating once the update step is shorter than this (pixels).
    pub epsilon: f32,
    /// Minimum acceptable smaller eigenvalue of the structure tensor,
    /// normalized per window pixel; below this the track is declared lost.
    pub min_eigen_threshold: f32,
    /// Maximum mean absolute intensity residual per window pixel at level 0
    /// for the track to be reported as found.
    pub max_residual: f32,
}

impl Default for LkParams {
    fn default() -> Self {
        Self {
            window_radius: 7,
            pyramid_levels: 3,
            max_iterations: 20,
            epsilon: 0.01,
            min_eigen_threshold: 1e-3,
            max_residual: 25.0,
        }
    }
}

/// Result of tracking one feature with [`PyramidalLk::track`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Feature position in the previous frame (as passed in).
    pub previous: Point2,
    /// Estimated position in the next frame.
    pub current: Point2,
    /// Whether the track is considered reliable.
    pub found: bool,
    /// Mean absolute intensity residual per window pixel at the finest level.
    pub residual: f32,
}

impl FlowResult {
    /// Displacement from the previous to the current position.
    pub fn displacement(&self) -> Vec2 {
        self.current - self.previous
    }
}

/// Pyramidal Lucas-Kanade tracker (the analogue of OpenCV's
/// `calcOpticalFlowPyrLK`).
///
/// # Example
///
/// ```
/// use adavp_vision::image::GrayImage;
/// use adavp_vision::flow::{PyramidalLk, LkParams};
/// use adavp_vision::geometry::Point2;
///
/// let prev = GrayImage::from_fn(64, 64, |x, y| ((x * 17 + y * 29) % 256) as u8);
/// let next = GrayImage::from_fn(64, 64, |x, y| {
///     prev.get_clamped(x as i64 - 1, y as i64) // shift right by 1px
/// });
/// let lk = PyramidalLk::new(LkParams::default());
/// let res = lk.track(&prev, &next, &[Point2::new(32.0, 32.0)]);
/// assert!(res[0].found);
/// let d = res[0].displacement();
/// assert!((d.x - 1.0).abs() < 0.5 && d.y.abs() < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct PyramidalLk {
    params: LkParams,
}

impl Default for PyramidalLk {
    fn default() -> Self {
        Self::new(LkParams::default())
    }
}

impl PyramidalLk {
    /// Creates a tracker with the given parameters.
    pub fn new(params: LkParams) -> Self {
        Self { params }
    }

    /// The tracker's parameters.
    pub fn params(&self) -> &LkParams {
        &self.params
    }

    /// Tracks `points` from `prev` into `next`.
    ///
    /// Builds pyramids internally; when tracking many point sets between the
    /// same frame pair, prefer [`PyramidalLk::track_pyramids`] to reuse them.
    pub fn track(&self, prev: &GrayImage, next: &GrayImage, points: &[Point2]) -> Vec<FlowResult> {
        let prev_pyr = Pyramid::build(prev, self.params.pyramid_levels);
        let next_pyr = Pyramid::build(next, self.params.pyramid_levels);
        self.track_pyramids(&prev_pyr, &next_pyr, points)
    }

    /// Tracks `points` between two prebuilt pyramids.
    ///
    /// The pyramids must have been built from images of identical size.
    pub fn track_pyramids(
        &self,
        prev: &Pyramid,
        next: &Pyramid,
        points: &[Point2],
    ) -> Vec<FlowResult> {
        let levels = prev.levels().min(next.levels());
        // Per-level gradients of the previous image.
        let grads: Vec<_> = (0..levels)
            .map(|l| scharr_gradients(prev.level(l)))
            .collect();
        points
            .iter()
            .map(|&p| self.track_one(prev, next, &grads, levels, p))
            .collect()
    }

    fn track_one(
        &self,
        prev: &Pyramid,
        next: &Pyramid,
        grads: &[crate::gradient::GradientField],
        levels: usize,
        point: Point2,
    ) -> FlowResult {
        let r = self.params.window_radius as i32;
        let win_pixels = ((2 * r + 1) * (2 * r + 1)) as f32;
        let mut lost = false;

        // Displacement estimate at the coarsest level.
        let mut d = Vec2::ZERO;
        let mut final_residual = f32::MAX;

        for (level, prev_img) in prev.iter_coarse_to_fine() {
            if level >= levels {
                continue;
            }
            let next_img = next.level(level);
            let grad = &grads[level];
            let scale = 1.0 / (1 << level) as f32;
            let pl = Point2::new(point.x * scale, point.y * scale);

            if !prev_img.in_bounds_with_margin(pl.x, pl.y, (r + 1) as f32) {
                // Feature too close to the border at this level; skip the level
                // (coarse levels may legitimately clip near-border features).
                if level == 0 {
                    lost = true;
                }
                continue;
            }

            // Structure tensor over the window (constant per level).
            let mut gxx = 0.0f32;
            let mut gxy = 0.0f32;
            let mut gyy = 0.0f32;
            for wy in -r..=r {
                for wx in -r..=r {
                    let gx = grad.sample_gx(pl.x + wx as f32, pl.y + wy as f32);
                    let gy = grad.sample_gy(pl.x + wx as f32, pl.y + wy as f32);
                    gxx += gx * gx;
                    gxy += gx * gy;
                    gyy += gy * gy;
                }
            }
            let trace_half = (gxx + gyy) / 2.0;
            let det_term = (((gxx - gyy) / 2.0).powi(2) + gxy * gxy).sqrt();
            let min_eig = (trace_half - det_term) / win_pixels;
            if min_eig < self.params.min_eigen_threshold {
                lost = true;
                break;
            }
            let det = gxx * gyy - gxy * gxy;
            if det.abs() < 1e-12 {
                lost = true;
                break;
            }

            // Newton iterations.
            for _ in 0..self.params.max_iterations {
                let target = pl + d;
                if !next_img.in_bounds_with_margin(target.x, target.y, (r + 1) as f32) {
                    lost = true;
                    break;
                }
                let mut bx = 0.0f32;
                let mut by = 0.0f32;
                for wy in -r..=r {
                    for wx in -r..=r {
                        let px = pl.x + wx as f32;
                        let py = pl.y + wy as f32;
                        let diff = prev_img.sample(px, py) - next_img.sample(px + d.x, py + d.y);
                        bx += diff * grad.sample_gx(px, py);
                        by += diff * grad.sample_gy(px, py);
                    }
                }
                let step = Vec2::new((gyy * bx - gxy * by) / det, (gxx * by - gxy * bx) / det);
                d += step;
                if step.norm() < self.params.epsilon {
                    break;
                }
            }
            if lost {
                break;
            }

            if level == 0 {
                // Final residual check at full resolution.
                let target = pl + d;
                if !next
                    .level(0)
                    .in_bounds_with_margin(target.x, target.y, (r + 1) as f32)
                {
                    lost = true;
                } else {
                    let mut res = 0.0f32;
                    for wy in -r..=r {
                        for wx in -r..=r {
                            let px = pl.x + wx as f32;
                            let py = pl.y + wy as f32;
                            res += (prev_img.sample(px, py)
                                - next.level(0).sample(px + d.x, py + d.y))
                            .abs();
                        }
                    }
                    final_residual = res / win_pixels;
                    if final_residual > self.params.max_residual {
                        lost = true;
                    }
                }
            } else {
                // Propagate to the next finer level.
                d = d * 2.0;
            }
        }

        let current = point + d;
        FlowResult {
            previous: point,
            current,
            found: !lost && final_residual <= self.params.max_residual,
            residual: if final_residual == f32::MAX {
                0.0
            } else {
                final_residual
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic smooth texture (sum of oriented sinusoids) — smooth
    /// enough for the LK linearization yet rich in 2-D structure.
    fn textured(w: u32, h: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let xf = x as f32;
            let yf = y as f32;
            let v = 128.0
                + 50.0 * (xf * 0.35).sin() * (yf * 0.27).cos()
                + 40.0 * ((xf * 0.12 + yf * 0.23).sin())
                + 20.0 * ((xf * 0.05).cos() * (yf * 0.4).sin());
            v.clamp(0.0, 255.0) as u8
        })
    }

    fn shifted(img: &GrayImage, dx: i64, dy: i64) -> GrayImage {
        GrayImage::from_fn(img.width(), img.height(), |x, y| {
            img.get_clamped(x as i64 - dx, y as i64 - dy)
        })
    }

    #[test]
    fn zero_motion_recovered() {
        let img = textured(96, 96);
        let lk = PyramidalLk::default();
        let res = lk.track(&img, &img, &[Point2::new(48.0, 48.0)]);
        assert!(res[0].found);
        assert!(res[0].displacement().norm() < 0.1);
        assert!(res[0].residual < 1.0);
    }

    #[test]
    fn small_translation_recovered() {
        let prev = textured(96, 96);
        let next = shifted(&prev, 2, 1);
        let lk = PyramidalLk::default();
        let pts = [
            Point2::new(30.0, 30.0),
            Point2::new(48.0, 60.0),
            Point2::new(70.0, 40.0),
        ];
        let res = lk.track(&prev, &next, &pts);
        for r in &res {
            assert!(r.found, "track lost at {}", r.previous);
            let d = r.displacement();
            assert!((d.x - 2.0).abs() < 0.5, "dx = {}", d.x);
            assert!((d.y - 1.0).abs() < 0.5, "dy = {}", d.y);
        }
    }

    #[test]
    fn large_translation_needs_pyramid() {
        let prev = textured(128, 128);
        let next = shifted(&prev, 9, 0);
        let single = PyramidalLk::new(LkParams {
            pyramid_levels: 1,
            ..Default::default()
        });
        let pyr = PyramidalLk::new(LkParams {
            pyramid_levels: 4,
            ..Default::default()
        });
        let p = [Point2::new(64.0, 64.0)];
        let r1 = single.track(&prev, &next, &p);
        let r4 = pyr.track(&prev, &next, &p);
        let err1 = (r1[0].displacement() - Vec2::new(9.0, 0.0)).norm();
        let err4 = (r4[0].displacement() - Vec2::new(9.0, 0.0)).norm();
        assert!(err4 < 1.0, "pyramidal error {err4}");
        assert!(
            err4 <= err1 + 1e-3,
            "pyramid ({err4}) should not be worse than single level ({err1})"
        );
    }

    #[test]
    fn flat_region_is_lost() {
        let prev = GrayImage::from_fn(64, 64, |_, _| 100);
        let next = prev.clone();
        let lk = PyramidalLk::default();
        let res = lk.track(&prev, &next, &[Point2::new(32.0, 32.0)]);
        assert!(!res[0].found, "flat region must be untrackable");
    }

    #[test]
    fn point_near_border_is_lost() {
        let prev = textured(64, 64);
        let lk = PyramidalLk::default();
        let res = lk.track(&prev, &prev, &[Point2::new(1.0, 1.0)]);
        assert!(!res[0].found);
    }

    #[test]
    fn appearance_change_raises_residual() {
        let prev = textured(96, 96);
        // Unrelated next frame: tracking must fail the residual check.
        let next = GrayImage::from_fn(96, 96, |x, y| {
            let n = x.wrapping_mul(97).wrapping_add(y.wrapping_mul(31));
            (n % 251) as u8
        });
        let lk = PyramidalLk::default();
        let res = lk.track(&prev, &next, &[Point2::new(48.0, 48.0)]);
        assert!(!res[0].found || res[0].residual > 10.0);
    }

    #[test]
    fn multiple_points_tracked_independently() {
        let prev = textured(96, 96);
        let next = shifted(&prev, 1, 2);
        let lk = PyramidalLk::default();
        let pts: Vec<Point2> = (0..10)
            .map(|i| Point2::new(20.0 + 6.0 * i as f32, 30.0 + 3.0 * i as f32))
            .collect();
        let res = lk.track(&prev, &next, &pts);
        assert_eq!(res.len(), pts.len());
        for (r, p) in res.iter().zip(&pts) {
            assert_eq!(r.previous, *p);
        }
        let found = res.iter().filter(|r| r.found).count();
        assert!(found >= 8, "only {found} of 10 found");
    }

    #[test]
    fn empty_point_list() {
        let img = textured(32, 32);
        let lk = PyramidalLk::default();
        assert!(lk.track(&img, &img, &[]).is_empty());
    }

    #[test]
    fn track_pyramids_reuse_matches_track() {
        let prev = textured(96, 96);
        let next = shifted(&prev, 2, 0);
        let lk = PyramidalLk::default();
        let pts = [Point2::new(40.0, 40.0), Point2::new(60.0, 50.0)];
        let a = lk.track(&prev, &next, &pts);
        let pp = Pyramid::build(&prev, lk.params().pyramid_levels);
        let np = Pyramid::build(&next, lk.params().pyramid_levels);
        let b = lk.track_pyramids(&pp, &np, &pts);
        assert_eq!(a, b);
    }
}
