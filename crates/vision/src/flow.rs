//! Pyramidal Lucas-Kanade sparse optical flow.
//!
//! Implements the iterative Lucas-Kanade method (Lucas & Kanade 1981; Bouguet
//! 2000 pyramidal formulation) used by the AdaVP object tracker to follow
//! Shi-Tomasi features between frames. For each feature the solver:
//!
//! 1. builds Gaussian pyramids of both frames,
//! 2. starting at the coarsest level, solves the 2x2 normal equations
//!    `G d = b` over a window around the feature, iterating Newton steps
//!    until the update is below [`LkParams::epsilon`],
//! 3. propagates the displacement (doubled) to the next finer level.
//!
//! A track is reported lost (`found == false`) when the structure tensor is
//! degenerate (flat/aperture region), when the point leaves the image, or
//! when the final per-pixel residual exceeds [`LkParams::max_residual`].
//!
//! # Hot-path structure
//!
//! [`PyramidalLk::track_pyramids`] reuses the Scharr gradients cached on the
//! *previous* pyramid ([`Pyramid::gradients`]) — they are computed once per
//! pyramid, not once per call — and each point samples its window of
//! previous-frame intensities and gradients exactly once per level
//! (they are constant across Newton iterations; only the next-frame window
//! moves). With the `parallel` feature (default) point sets of at least
//! [`PyramidalLk::PARALLEL_MIN_POINTS`] fan out across threads; results are
//! **bit-identical** to the sequential path because each point's computation
//! is independent and results are collected in input order (see
//! [`crate::parallel`] and the `lk_parity` tests).

use crate::geometry::{Point2, Vec2};
use crate::gradient::GradientField;
use crate::image::GrayImage;
use crate::perf;
use crate::pyramid::Pyramid;
use crate::simd;
use std::fmt;

/// Parameters for [`PyramidalLk`].
#[derive(Debug, Clone, PartialEq)]
pub struct LkParams {
    /// Half-width of the tracking window (window side = 2*radius+1 pixels).
    pub window_radius: u32,
    /// Number of pyramid levels (1 = plain single-level LK).
    pub pyramid_levels: u32,
    /// Maximum Newton iterations per pyramid level.
    pub max_iterations: u32,
    /// Stop iterating once the update step is shorter than this (pixels).
    pub epsilon: f32,
    /// Minimum acceptable smaller eigenvalue of the structure tensor,
    /// normalized per window pixel; below this the track is declared lost.
    pub min_eigen_threshold: f32,
    /// Maximum mean absolute intensity residual per window pixel at level 0
    /// for the track to be reported as found.
    pub max_residual: f32,
}

/// Reason a set of [`LkParams`] was rejected by [`LkParams::validated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LkParamsError {
    /// `pyramid_levels` was zero (at least one level is required).
    ZeroPyramidLevels,
    /// `window_radius` was zero (the window would be a single pixel and the
    /// structure tensor always degenerate).
    ZeroWindowRadius,
    /// `max_iterations` was zero (no Newton step could ever run).
    ZeroIterations,
    /// The named threshold field was non-finite or outside its valid range.
    InvalidThreshold(&'static str),
}

impl fmt::Display for LkParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroPyramidLevels => write!(f, "pyramid_levels must be at least 1"),
            Self::ZeroWindowRadius => write!(f, "window_radius must be at least 1"),
            Self::ZeroIterations => write!(f, "max_iterations must be at least 1"),
            Self::InvalidThreshold(field) => {
                write!(f, "{field} must be finite and within its valid range")
            }
        }
    }
}

impl std::error::Error for LkParamsError {}

impl LkParams {
    /// Validates the parameters, returning them unchanged on success.
    ///
    /// Rejects zero `pyramid_levels`, zero `window_radius`, zero
    /// `max_iterations`, and non-finite (or non-positive where positivity
    /// is required) threshold fields.
    ///
    /// # Example
    ///
    /// ```
    /// use adavp_vision::flow::{LkParams, LkParamsError};
    /// assert!(LkParams::default().validated().is_ok());
    /// let bad = LkParams { pyramid_levels: 0, ..Default::default() };
    /// assert_eq!(bad.validated(), Err(LkParamsError::ZeroPyramidLevels));
    /// ```
    pub fn validated(self) -> Result<Self, LkParamsError> {
        if self.pyramid_levels == 0 {
            return Err(LkParamsError::ZeroPyramidLevels);
        }
        if self.window_radius == 0 {
            return Err(LkParamsError::ZeroWindowRadius);
        }
        if self.max_iterations == 0 {
            return Err(LkParamsError::ZeroIterations);
        }
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(LkParamsError::InvalidThreshold("epsilon"));
        }
        if !self.min_eigen_threshold.is_finite() || self.min_eigen_threshold < 0.0 {
            return Err(LkParamsError::InvalidThreshold("min_eigen_threshold"));
        }
        if !self.max_residual.is_finite() || self.max_residual <= 0.0 {
            return Err(LkParamsError::InvalidThreshold("max_residual"));
        }
        Ok(self)
    }
}

impl Default for LkParams {
    fn default() -> Self {
        Self {
            window_radius: 7,
            pyramid_levels: 3,
            max_iterations: 20,
            epsilon: 0.01,
            min_eigen_threshold: 1e-3,
            max_residual: 25.0,
        }
    }
}

/// Result of tracking one feature with [`PyramidalLk::track`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Feature position in the previous frame (as passed in).
    pub previous: Point2,
    /// Estimated position in the next frame.
    pub current: Point2,
    /// Whether the track is considered reliable.
    pub found: bool,
    /// Mean absolute intensity residual per window pixel at the finest level.
    pub residual: f32,
}

impl FlowResult {
    /// Displacement from the previous to the current position.
    pub fn displacement(&self) -> Vec2 {
        self.current - self.previous
    }
}

/// Per-point window state, captured once per pyramid level and reused by
/// every Newton iteration (previous-frame intensities and gradients do not
/// change while the displacement estimate is refined).
///
/// Besides the flat sample buffers, the cache holds the per-column
/// bilinear *tap tables* (`px`/`x0`/`tx` for the fixed previous-frame
/// window, `qx0`/`qtx` for the displaced next-frame window): the window's
/// x-coordinates are the same on every row, so floors and fractions are
/// computed once per level (or once per Newton iteration) instead of once
/// per tap, and whole rows are then filled through the vectorized
/// [`simd::bilinear_span_u8`]/[`simd::bilinear_span_f32`] helpers whenever
/// the integer tap columns form a contiguous in-bounds run
/// ([`simd::contiguous_start`]). Rows where floating-point rounding breaks
/// the run fall back to per-tap sampling — bit-identical, just slower.
#[derive(Default)]
struct WindowCache {
    prev: Vec<f32>,
    gx: Vec<f32>,
    gy: Vec<f32>,
    /// One row of next-frame window samples (scratch for the Newton loop).
    cur: Vec<f32>,
    /// Per-column window x-coordinates: `pl.x + wx`.
    px: Vec<f32>,
    /// Per-column integer tap columns: `px.floor()`.
    x0: Vec<i64>,
    /// Per-column horizontal fractions: `px - px.floor()`.
    tx: Vec<f32>,
    /// Newton-displaced tap columns: `(px + d.x).floor()`.
    qx0: Vec<i64>,
    /// Newton-displaced horizontal fractions.
    qtx: Vec<f32>,
}

impl WindowCache {
    /// Resets the cache for a window of side `side` and precomputes the
    /// per-column tap tables for a window centred at x-coordinate `cx`.
    fn begin_level(&mut self, side: usize, r: i32, cx: f32) {
        let n = side * side;
        self.prev.clear();
        self.prev.reserve(n);
        self.gx.clear();
        self.gx.reserve(n);
        self.gy.clear();
        self.gy.reserve(n);
        self.cur.clear();
        self.cur.resize(side, 0.0);
        self.px.clear();
        self.x0.clear();
        self.tx.clear();
        self.qx0.clear();
        self.qtx.clear();
        for wx in -r..=r {
            // Exactly the per-tap expressions of the baseline: the fraction
            // of `pl.x + wx` is NOT constant across wx (f32 rounding can
            // shift it and even the floor), so each column gets its own
            // floor/fraction rather than a shared one.
            let px = cx + wx as f32;
            let xf = px.floor();
            self.px.push(px);
            self.x0.push(xf as i64);
            self.tx.push(px - xf);
        }
    }

    /// Recomputes the displaced tap tables for displacement `dx`.
    fn displace(&mut self, dx: f32) {
        self.qx0.clear();
        self.qtx.clear();
        for &px in &self.px {
            let qx = px + dx;
            let xf = qx.floor();
            self.qx0.push(xf as i64);
            self.qtx.push(qx - xf);
        }
    }
}

/// Pyramidal Lucas-Kanade tracker (the analogue of OpenCV's
/// `calcOpticalFlowPyrLK`).
///
/// # Example
///
/// ```
/// use adavp_vision::image::GrayImage;
/// use adavp_vision::flow::{PyramidalLk, LkParams};
/// use adavp_vision::geometry::Point2;
///
/// let prev = GrayImage::from_fn(64, 64, |x, y| ((x * 17 + y * 29) % 256) as u8);
/// let next = GrayImage::from_fn(64, 64, |x, y| {
///     prev.get_clamped(x as i64 - 1, y as i64) // shift right by 1px
/// });
/// let lk = PyramidalLk::new(LkParams::default());
/// let res = lk.track(&prev, &next, &[Point2::new(32.0, 32.0)]);
/// assert!(res[0].found);
/// let d = res[0].displacement();
/// assert!((d.x - 1.0).abs() < 0.5 && d.y.abs() < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct PyramidalLk {
    params: LkParams,
}

impl Default for PyramidalLk {
    fn default() -> Self {
        Self::new(LkParams::default())
    }
}

impl PyramidalLk {
    /// Point-set size at which [`PyramidalLk::track_pyramids`] switches to
    /// the parallel path (when the `parallel` feature is enabled and more
    /// than one core is available).
    pub const PARALLEL_MIN_POINTS: usize = 16;

    /// Creates a tracker with the given parameters.
    pub fn new(params: LkParams) -> Self {
        Self { params }
    }

    /// Creates a tracker after validating `params` (see
    /// [`LkParams::validated`]).
    pub fn try_new(params: LkParams) -> Result<Self, LkParamsError> {
        Ok(Self {
            params: params.validated()?,
        })
    }

    /// The tracker's parameters.
    pub fn params(&self) -> &LkParams {
        &self.params
    }

    /// Tracks `points` from `prev` into `next`.
    ///
    /// Builds pyramids internally; when tracking many point sets between the
    /// same frame pair — or when carrying a frame's pyramid forward as the
    /// next step's reference — prefer [`PyramidalLk::track_pyramids`] to
    /// reuse pyramids and their cached gradients.
    pub fn track(&self, prev: &GrayImage, next: &GrayImage, points: &[Point2]) -> Vec<FlowResult> {
        let prev_pyr = Pyramid::build(prev, self.params.pyramid_levels);
        let next_pyr = Pyramid::build(next, self.params.pyramid_levels);
        self.track_pyramids(&prev_pyr, &next_pyr, points)
    }

    /// Tracks `points` between two prebuilt pyramids.
    ///
    /// The pyramids must have been built from images of identical size.
    /// Uses the Scharr gradients cached on `prev` (computing them on first
    /// use), and automatically parallelizes across points for sets of at
    /// least [`PyramidalLk::PARALLEL_MIN_POINTS`] when the `parallel`
    /// feature is on. The parallel and sequential paths return bit-identical
    /// results.
    pub fn track_pyramids(
        &self,
        prev: &Pyramid,
        next: &Pyramid,
        points: &[Point2],
    ) -> Vec<FlowResult> {
        #[cfg(feature = "parallel")]
        {
            if points.len() >= Self::PARALLEL_MIN_POINTS && crate::parallel::max_threads() > 1 {
                return self.track_pyramids_parallel(prev, next, points);
            }
        }
        self.track_pyramids_sequential(prev, next, points)
    }

    /// [`PyramidalLk::track_pyramids`] forced down the sequential path
    /// (no thread fan-out regardless of point count or features).
    pub fn track_pyramids_sequential(
        &self,
        prev: &Pyramid,
        next: &Pyramid,
        points: &[Point2],
    ) -> Vec<FlowResult> {
        let _timer = perf::ScopedTimer::new(|c| &mut c.flow_ns);
        perf::record(|c| {
            c.lk_calls += 1;
            c.lk_points += points.len() as u64;
        });
        let levels = prev.levels().min(next.levels());
        let grads = prev.gradients();
        let mut cache = WindowCache::default();
        points
            .iter()
            .map(|&p| self.track_one(prev, next, grads, levels, p, &mut cache))
            .collect()
    }

    /// [`PyramidalLk::track_pyramids`] forced down the parallel path:
    /// points fan out over up to [`crate::parallel::max_threads`] threads.
    ///
    /// Results are bit-identical to
    /// [`PyramidalLk::track_pyramids_sequential`]: every point's solve is
    /// independent and performs the same floating-point operations in the
    /// same order; only the assignment of points to threads differs, and
    /// results are collected in input order.
    #[cfg(feature = "parallel")]
    pub fn track_pyramids_parallel(
        &self,
        prev: &Pyramid,
        next: &Pyramid,
        points: &[Point2],
    ) -> Vec<FlowResult> {
        let _timer = perf::ScopedTimer::new(|c| &mut c.flow_ns);
        perf::record(|c| {
            c.lk_calls += 1;
            c.lk_points += points.len() as u64;
        });
        let levels = prev.levels().min(next.levels());
        // Force the gradient cache on the calling thread so workers share it
        // instead of racing to compute it.
        let grads = prev.gradients();
        let bands = crate::parallel::max_threads();
        let per_band = crate::parallel::map_bands(points.len(), bands, |s, e| {
            let mut cache = WindowCache::default();
            points[s..e]
                .iter()
                .map(|&p| self.track_one(prev, next, grads, levels, p, &mut cache))
                .collect::<Vec<_>>()
        });
        let mut out = Vec::with_capacity(points.len());
        for band in per_band {
            out.extend(band);
        }
        out
    }

    fn track_one(
        &self,
        prev: &Pyramid,
        next: &Pyramid,
        grads: &[GradientField],
        levels: usize,
        point: Point2,
        cache: &mut WindowCache,
    ) -> FlowResult {
        let r = self.params.window_radius as i32;
        let win_pixels = ((2 * r + 1) * (2 * r + 1)) as f32;
        let mut lost = false;

        // Displacement estimate at the coarsest level.
        let mut d = Vec2::ZERO;
        let mut final_residual = f32::MAX;

        for (level, prev_img) in prev.iter_coarse_to_fine() {
            if level >= levels {
                continue;
            }
            let next_img = next.level(level);
            let grad = &grads[level];
            let scale = 1.0 / (1 << level) as f32;
            let pl = Point2::new(point.x * scale, point.y * scale);

            if !prev_img.in_bounds_with_margin(pl.x, pl.y, (r + 1) as f32) {
                // Feature too close to the border at this level; skip the level
                // (coarse levels may legitimately clip near-border features).
                if level == 0 {
                    lost = true;
                }
                continue;
            }

            // One pass over the window: capture the previous-frame intensity
            // and gradient samples (constant across iterations at this
            // level), row by row through the vectorized span fills, then
            // accumulate the structure tensor over the flat buffers in the
            // same tap order as the baseline's interleaved loop.
            let side = (2 * r + 1) as usize;
            let w_img = prev_img.width() as usize;
            let h_img = prev_img.height() as i64;
            cache.begin_level(side, r, pl.x);
            for wy in -r..=r {
                let py = pl.y + wy as f32;
                let yf = py.floor();
                let y0 = yf as i64;
                let ty = py - yf;
                let base = cache.prev.len();
                cache.prev.resize(base + side, 0.0);
                cache.gx.resize(base + side, 0.0);
                cache.gy.resize(base + side, 0.0);
                // `cfg!` folds at compile time: without the `simd` feature
                // every row takes the per-tap path (same arithmetic).
                let span = if cfg!(feature = "simd") && y0 >= 0 && y0 + 1 < h_img {
                    simd::contiguous_start(&cache.x0, w_img)
                } else {
                    None
                };
                match span {
                    Some(s) => {
                        let (ya, yb) = (y0 as u32, y0 as u32 + 1);
                        simd::bilinear_span_u8(
                            &prev_img.row(ya)[s..s + side + 1],
                            &prev_img.row(yb)[s..s + side + 1],
                            &cache.tx,
                            ty,
                            &mut cache.prev[base..base + side],
                        );
                        simd::bilinear_span_f32(
                            &grad.gx_row(ya)[s..s + side + 1],
                            &grad.gx_row(yb)[s..s + side + 1],
                            &cache.tx,
                            ty,
                            &mut cache.gx[base..base + side],
                        );
                        simd::bilinear_span_f32(
                            &grad.gy_row(ya)[s..s + side + 1],
                            &grad.gy_row(yb)[s..s + side + 1],
                            &cache.tx,
                            ty,
                            &mut cache.gy[base..base + side],
                        );
                    }
                    None => {
                        for k in 0..side {
                            let px = cache.px[k];
                            cache.gx[base + k] = grad.sample_gx_fast(px, py);
                            cache.gy[base + k] = grad.sample_gy_fast(px, py);
                            cache.prev[base + k] = prev_img.sample_fast(px, py);
                        }
                    }
                }
            }
            let mut gxx = 0.0f32;
            let mut gxy = 0.0f32;
            let mut gyy = 0.0f32;
            for (gx, gy) in cache.gx.iter().zip(&cache.gy) {
                gxx += gx * gx;
                gxy += gx * gy;
                gyy += gy * gy;
            }
            let trace_half = (gxx + gyy) / 2.0;
            let det_term = (((gxx - gyy) / 2.0).powi(2) + gxy * gxy).sqrt();
            let min_eig = (trace_half - det_term) / win_pixels;
            if min_eig < self.params.min_eigen_threshold {
                lost = true;
                break;
            }
            let det = gxx * gyy - gxy * gxy;
            if det.abs() < 1e-12 {
                lost = true;
                break;
            }

            // Newton iterations: only the next-frame window is resampled.
            // The displaced window's x-taps are the same on every row, so
            // their floors/fractions are computed once per iteration
            // (`displace`), and each row is fetched through one vectorized
            // bilinear span when the taps stay a contiguous interior run.
            let nw_img = next_img.width() as usize;
            let nh_img = next_img.height() as i64;
            let mut iterations = 0u64;
            for _ in 0..self.params.max_iterations {
                let target = pl + d;
                if !next_img.in_bounds_with_margin(target.x, target.y, (r + 1) as f32) {
                    lost = true;
                    break;
                }
                iterations += 1;
                cache.displace(d.x);
                let qspan = if cfg!(feature = "simd") {
                    simd::contiguous_start(&cache.qx0, nw_img)
                } else {
                    None
                };
                let mut bx = 0.0f32;
                let mut by = 0.0f32;
                let mut i = 0usize;
                for wy in -r..=r {
                    let py = pl.y + wy as f32;
                    let qy = py + d.y;
                    let yf = qy.floor();
                    let y0 = yf as i64;
                    let ty = qy - yf;
                    if let (Some(s), true) = (qspan, y0 >= 0 && y0 + 1 < nh_img) {
                        simd::bilinear_span_u8(
                            &next_img.row(y0 as u32)[s..s + side + 1],
                            &next_img.row(y0 as u32 + 1)[s..s + side + 1],
                            &cache.qtx,
                            ty,
                            &mut cache.cur,
                        );
                        for k in 0..side {
                            let diff = cache.prev[i] - cache.cur[k];
                            bx += diff * cache.gx[i];
                            by += diff * cache.gy[i];
                            i += 1;
                        }
                    } else {
                        for k in 0..side {
                            let diff = cache.prev[i] - next_img.sample_fast(cache.px[k] + d.x, qy);
                            bx += diff * cache.gx[i];
                            by += diff * cache.gy[i];
                            i += 1;
                        }
                    }
                }
                let step = Vec2::new((gyy * bx - gxy * by) / det, (gxx * by - gxy * bx) / det);
                d += step;
                if step.norm() < self.params.epsilon {
                    break;
                }
            }
            perf::record(|c| c.lk_iterations += iterations);
            if lost {
                break;
            }

            if level == 0 {
                // Final residual check at full resolution, same span
                // structure as the Newton rows.
                let target = pl + d;
                let next0 = next.level(0);
                if !next0.in_bounds_with_margin(target.x, target.y, (r + 1) as f32) {
                    lost = true;
                } else {
                    cache.displace(d.x);
                    let qspan = if cfg!(feature = "simd") {
                        simd::contiguous_start(&cache.qx0, next0.width() as usize)
                    } else {
                        None
                    };
                    let nh0 = next0.height() as i64;
                    let mut res = 0.0f32;
                    let mut i = 0usize;
                    for wy in -r..=r {
                        let py = pl.y + wy as f32;
                        let qy = py + d.y;
                        let yf = qy.floor();
                        let y0 = yf as i64;
                        let ty = qy - yf;
                        if let (Some(s), true) = (qspan, y0 >= 0 && y0 + 1 < nh0) {
                            simd::bilinear_span_u8(
                                &next0.row(y0 as u32)[s..s + side + 1],
                                &next0.row(y0 as u32 + 1)[s..s + side + 1],
                                &cache.qtx,
                                ty,
                                &mut cache.cur,
                            );
                            for k in 0..side {
                                res += (cache.prev[i] - cache.cur[k]).abs();
                                i += 1;
                            }
                        } else {
                            for k in 0..side {
                                res += (cache.prev[i] - next0.sample_fast(cache.px[k] + d.x, qy))
                                    .abs();
                                i += 1;
                            }
                        }
                    }
                    final_residual = res / win_pixels;
                    if final_residual > self.params.max_residual {
                        lost = true;
                    }
                }
            } else {
                // Propagate to the next finer level.
                d = d * 2.0;
            }
        }

        let current = point + d;
        FlowResult {
            previous: point,
            current,
            found: !lost && final_residual <= self.params.max_residual,
            residual: if final_residual == f32::MAX {
                0.0
            } else {
                final_residual
            },
        }
    }

    /// The pre-optimization implementation, retained verbatim as the
    /// differential-testing oracle and the benchmark baseline: it recomputes
    /// Scharr gradients on every call and resamples the previous-frame
    /// window on every Newton iteration. Produces bit-identical results to
    /// [`PyramidalLk::track_pyramids`].
    #[doc(hidden)]
    pub fn track_pyramids_baseline(
        &self,
        prev: &Pyramid,
        next: &Pyramid,
        points: &[Point2],
    ) -> Vec<FlowResult> {
        let levels = prev.levels().min(next.levels());
        let grads: Vec<_> = (0..levels)
            .map(|l| crate::gradient::scharr_gradients(prev.level(l)))
            .collect();
        points
            .iter()
            .map(|&p| self.track_one_baseline(prev, next, &grads, levels, p))
            .collect()
    }

    fn track_one_baseline(
        &self,
        prev: &Pyramid,
        next: &Pyramid,
        grads: &[GradientField],
        levels: usize,
        point: Point2,
    ) -> FlowResult {
        let r = self.params.window_radius as i32;
        let win_pixels = ((2 * r + 1) * (2 * r + 1)) as f32;
        let mut lost = false;

        let mut d = Vec2::ZERO;
        let mut final_residual = f32::MAX;

        for (level, prev_img) in prev.iter_coarse_to_fine() {
            if level >= levels {
                continue;
            }
            let next_img = next.level(level);
            let grad = &grads[level];
            let scale = 1.0 / (1 << level) as f32;
            let pl = Point2::new(point.x * scale, point.y * scale);

            if !prev_img.in_bounds_with_margin(pl.x, pl.y, (r + 1) as f32) {
                if level == 0 {
                    lost = true;
                }
                continue;
            }

            let mut gxx = 0.0f32;
            let mut gxy = 0.0f32;
            let mut gyy = 0.0f32;
            for wy in -r..=r {
                for wx in -r..=r {
                    let gx = grad.sample_gx(pl.x + wx as f32, pl.y + wy as f32);
                    let gy = grad.sample_gy(pl.x + wx as f32, pl.y + wy as f32);
                    gxx += gx * gx;
                    gxy += gx * gy;
                    gyy += gy * gy;
                }
            }
            let trace_half = (gxx + gyy) / 2.0;
            let det_term = (((gxx - gyy) / 2.0).powi(2) + gxy * gxy).sqrt();
            let min_eig = (trace_half - det_term) / win_pixels;
            if min_eig < self.params.min_eigen_threshold {
                lost = true;
                break;
            }
            let det = gxx * gyy - gxy * gxy;
            if det.abs() < 1e-12 {
                lost = true;
                break;
            }

            for _ in 0..self.params.max_iterations {
                let target = pl + d;
                if !next_img.in_bounds_with_margin(target.x, target.y, (r + 1) as f32) {
                    lost = true;
                    break;
                }
                let mut bx = 0.0f32;
                let mut by = 0.0f32;
                for wy in -r..=r {
                    for wx in -r..=r {
                        let px = pl.x + wx as f32;
                        let py = pl.y + wy as f32;
                        let diff = prev_img.sample(px, py) - next_img.sample(px + d.x, py + d.y);
                        bx += diff * grad.sample_gx(px, py);
                        by += diff * grad.sample_gy(px, py);
                    }
                }
                let step = Vec2::new((gyy * bx - gxy * by) / det, (gxx * by - gxy * bx) / det);
                d += step;
                if step.norm() < self.params.epsilon {
                    break;
                }
            }
            if lost {
                break;
            }

            if level == 0 {
                let target = pl + d;
                if !next
                    .level(0)
                    .in_bounds_with_margin(target.x, target.y, (r + 1) as f32)
                {
                    lost = true;
                } else {
                    let mut res = 0.0f32;
                    for wy in -r..=r {
                        for wx in -r..=r {
                            let px = pl.x + wx as f32;
                            let py = pl.y + wy as f32;
                            res += (prev_img.sample(px, py)
                                - next.level(0).sample(px + d.x, py + d.y))
                            .abs();
                        }
                    }
                    final_residual = res / win_pixels;
                    if final_residual > self.params.max_residual {
                        lost = true;
                    }
                }
            } else {
                d = d * 2.0;
            }
        }

        let current = point + d;
        FlowResult {
            previous: point,
            current,
            found: !lost && final_residual <= self.params.max_residual,
            residual: if final_residual == f32::MAX {
                0.0
            } else {
                final_residual
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic smooth texture (sum of oriented sinusoids) — smooth
    /// enough for the LK linearization yet rich in 2-D structure.
    fn textured(w: u32, h: u32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            let xf = x as f32;
            let yf = y as f32;
            let v = 128.0
                + 50.0 * (xf * 0.35).sin() * (yf * 0.27).cos()
                + 40.0 * ((xf * 0.12 + yf * 0.23).sin())
                + 20.0 * ((xf * 0.05).cos() * (yf * 0.4).sin());
            v.clamp(0.0, 255.0) as u8
        })
    }

    fn shifted(img: &GrayImage, dx: i64, dy: i64) -> GrayImage {
        GrayImage::from_fn(img.width(), img.height(), |x, y| {
            img.get_clamped(x as i64 - dx, y as i64 - dy)
        })
    }

    #[test]
    fn zero_motion_recovered() {
        let img = textured(96, 96);
        let lk = PyramidalLk::default();
        let res = lk.track(&img, &img, &[Point2::new(48.0, 48.0)]);
        assert!(res[0].found);
        assert!(res[0].displacement().norm() < 0.1);
        assert!(res[0].residual < 1.0);
    }

    #[test]
    fn small_translation_recovered() {
        let prev = textured(96, 96);
        let next = shifted(&prev, 2, 1);
        let lk = PyramidalLk::default();
        let pts = [
            Point2::new(30.0, 30.0),
            Point2::new(48.0, 60.0),
            Point2::new(70.0, 40.0),
        ];
        let res = lk.track(&prev, &next, &pts);
        for r in &res {
            assert!(r.found, "track lost at {}", r.previous);
            let d = r.displacement();
            assert!((d.x - 2.0).abs() < 0.5, "dx = {}", d.x);
            assert!((d.y - 1.0).abs() < 0.5, "dy = {}", d.y);
        }
    }

    #[test]
    fn large_translation_needs_pyramid() {
        let prev = textured(128, 128);
        let next = shifted(&prev, 9, 0);
        let single = PyramidalLk::new(LkParams {
            pyramid_levels: 1,
            ..Default::default()
        });
        let pyr = PyramidalLk::new(LkParams {
            pyramid_levels: 4,
            ..Default::default()
        });
        let p = [Point2::new(64.0, 64.0)];
        let r1 = single.track(&prev, &next, &p);
        let r4 = pyr.track(&prev, &next, &p);
        let err1 = (r1[0].displacement() - Vec2::new(9.0, 0.0)).norm();
        let err4 = (r4[0].displacement() - Vec2::new(9.0, 0.0)).norm();
        assert!(err4 < 1.0, "pyramidal error {err4}");
        assert!(
            err4 <= err1 + 1e-3,
            "pyramid ({err4}) should not be worse than single level ({err1})"
        );
    }

    #[test]
    fn flat_region_is_lost() {
        let prev = GrayImage::from_fn(64, 64, |_, _| 100);
        let next = prev.clone();
        let lk = PyramidalLk::default();
        let res = lk.track(&prev, &next, &[Point2::new(32.0, 32.0)]);
        assert!(!res[0].found, "flat region must be untrackable");
    }

    #[test]
    fn point_near_border_is_lost() {
        let prev = textured(64, 64);
        let lk = PyramidalLk::default();
        let res = lk.track(&prev, &prev, &[Point2::new(1.0, 1.0)]);
        assert!(!res[0].found);
    }

    #[test]
    fn appearance_change_raises_residual() {
        let prev = textured(96, 96);
        // Unrelated next frame: tracking must fail the residual check.
        let next = GrayImage::from_fn(96, 96, |x, y| {
            let n = x.wrapping_mul(97).wrapping_add(y.wrapping_mul(31));
            (n % 251) as u8
        });
        let lk = PyramidalLk::default();
        let res = lk.track(&prev, &next, &[Point2::new(48.0, 48.0)]);
        assert!(!res[0].found || res[0].residual > 10.0);
    }

    #[test]
    fn multiple_points_tracked_independently() {
        let prev = textured(96, 96);
        let next = shifted(&prev, 1, 2);
        let lk = PyramidalLk::default();
        let pts: Vec<Point2> = (0..10)
            .map(|i| Point2::new(20.0 + 6.0 * i as f32, 30.0 + 3.0 * i as f32))
            .collect();
        let res = lk.track(&prev, &next, &pts);
        assert_eq!(res.len(), pts.len());
        for (r, p) in res.iter().zip(&pts) {
            assert_eq!(r.previous, *p);
        }
        let found = res.iter().filter(|r| r.found).count();
        assert!(found >= 8, "only {found} of 10 found");
    }

    #[test]
    fn empty_point_list() {
        let img = textured(32, 32);
        let lk = PyramidalLk::default();
        assert!(lk.track(&img, &img, &[]).is_empty());
    }

    #[test]
    fn track_pyramids_reuse_matches_track() {
        let prev = textured(96, 96);
        let next = shifted(&prev, 2, 0);
        let lk = PyramidalLk::default();
        let pts = [Point2::new(40.0, 40.0), Point2::new(60.0, 50.0)];
        let a = lk.track(&prev, &next, &pts);
        let pp = Pyramid::build(&prev, lk.params().pyramid_levels);
        let np = Pyramid::build(&next, lk.params().pyramid_levels);
        let b = lk.track_pyramids(&pp, &np, &pts);
        assert_eq!(a, b);
    }

    fn grid_points(w: u32, h: u32, step: u32) -> Vec<Point2> {
        let mut pts = Vec::new();
        let mut y = step;
        while y < h - step {
            let mut x = step;
            while x < w - step {
                pts.push(Point2::new(x as f32, y as f32));
                x += step;
            }
            y += step;
        }
        pts
    }

    #[test]
    fn optimized_matches_baseline_exactly() {
        let prev = textured(128, 96);
        let next = shifted(&prev, 3, -2);
        let lk = PyramidalLk::default();
        let pts = grid_points(128, 96, 12);
        assert!(pts.len() > 20);
        let pp = Pyramid::build(&prev, lk.params().pyramid_levels);
        let np = Pyramid::build(&next, lk.params().pyramid_levels);
        let base = lk.track_pyramids_baseline(&pp, &np, &pts);
        let opt = lk.track_pyramids_sequential(&pp, &np, &pts);
        assert_eq!(base, opt, "window caching must be bit-identical");
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_matches_sequential_exactly() {
        let prev = textured(128, 96);
        let next = shifted(&prev, -2, 1);
        let lk = PyramidalLk::default();
        let pts = grid_points(128, 96, 10);
        assert!(pts.len() >= PyramidalLk::PARALLEL_MIN_POINTS);
        let pp = Pyramid::build(&prev, lk.params().pyramid_levels);
        let np = Pyramid::build(&next, lk.params().pyramid_levels);
        let seq = lk.track_pyramids_sequential(&pp, &np, &pts);
        let par = lk.track_pyramids_parallel(&pp, &np, &pts);
        let auto = lk.track_pyramids(&pp, &np, &pts);
        assert_eq!(seq, par, "parallel LK must be bit-identical");
        assert_eq!(seq, auto);
    }

    #[test]
    fn validated_accepts_default_rejects_bad() {
        assert!(LkParams::default().validated().is_ok());
        assert_eq!(
            LkParams {
                pyramid_levels: 0,
                ..Default::default()
            }
            .validated(),
            Err(LkParamsError::ZeroPyramidLevels)
        );
        assert_eq!(
            LkParams {
                window_radius: 0,
                ..Default::default()
            }
            .validated(),
            Err(LkParamsError::ZeroWindowRadius)
        );
        assert_eq!(
            LkParams {
                max_iterations: 0,
                ..Default::default()
            }
            .validated(),
            Err(LkParamsError::ZeroIterations)
        );
        for (params, field) in [
            (
                LkParams {
                    epsilon: f32::NAN,
                    ..Default::default()
                },
                "epsilon",
            ),
            (
                LkParams {
                    epsilon: 0.0,
                    ..Default::default()
                },
                "epsilon",
            ),
            (
                LkParams {
                    min_eigen_threshold: f32::INFINITY,
                    ..Default::default()
                },
                "min_eigen_threshold",
            ),
            (
                LkParams {
                    max_residual: f32::NAN,
                    ..Default::default()
                },
                "max_residual",
            ),
            (
                LkParams {
                    max_residual: -1.0,
                    ..Default::default()
                },
                "max_residual",
            ),
        ] {
            assert_eq!(
                params.validated(),
                Err(LkParamsError::InvalidThreshold(field))
            );
        }
        assert!(PyramidalLk::try_new(LkParams::default()).is_ok());
        assert!(PyramidalLk::try_new(LkParams {
            window_radius: 0,
            ..Default::default()
        })
        .is_err());
        // Errors render something human-readable.
        assert!(LkParamsError::ZeroPyramidLevels
            .to_string()
            .contains("pyramid"));
    }

    #[test]
    fn perf_counters_observe_tracking() {
        let prev = textured(96, 96);
        let next = shifted(&prev, 1, 1);
        let lk = PyramidalLk::default();
        let pp = Pyramid::build(&prev, lk.params().pyramid_levels);
        let np = Pyramid::build(&next, lk.params().pyramid_levels);
        let pts = [Point2::new(40.0, 40.0), Point2::new(60.0, 30.0)];
        crate::perf::reset();
        let _ = lk.track_pyramids(&pp, &np, &pts);
        let s1 = crate::perf::snapshot();
        assert_eq!(s1.lk_calls, 1);
        assert_eq!(s1.lk_points, 2);
        assert!(s1.lk_iterations > 0);
        assert_eq!(
            s1.gradient_fields,
            pp.levels() as u64,
            "gradients computed once per level"
        );
        // A second call over the same reference pyramid reuses the cache.
        let _ = lk.track_pyramids(&pp, &np, &pts);
        let s2 = crate::perf::snapshot();
        assert_eq!(s2.lk_calls, 2);
        assert_eq!(s2.gradient_fields, s1.gradient_fields);
    }
}
