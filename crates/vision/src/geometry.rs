//! Points, vectors and axis-aligned bounding boxes in image coordinates.
//!
//! All coordinates are `f32` pixels with the origin at the top-left corner,
//! `x` growing rightwards and `y` growing downwards, matching the raster
//! layout used by [`crate::image::GrayImage`].

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 2-D point in pixel coordinates.
///
/// # Example
///
/// ```
/// use adavp_vision::geometry::{Point2, Vec2};
/// let p = Point2::new(3.0, 4.0);
/// let q = p + Vec2::new(1.0, -1.0);
/// assert_eq!(q, Point2::new(4.0, 3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Point2 {
    /// Horizontal coordinate (pixels, grows rightwards).
    pub x: f32,
    /// Vertical coordinate (pixels, grows downwards).
    pub y: f32,
}

impl Point2 {
    /// Creates a point from its coordinates.
    pub fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: Point2) -> f32 {
        (*self - other).norm()
    }

    /// Squared Euclidean distance to another point (no square root).
    pub fn distance_sq(&self, other: Point2) -> f32 {
        let d = *self - other;
        d.x * d.x + d.y * d.y
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f32, f32)> for Point2 {
    fn from((x, y): (f32, f32)) -> Self {
        Self { x, y }
    }
}

/// A 2-D displacement vector in pixel coordinates.
///
/// Used for optical-flow displacements and object motion vectors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
}

impl Vec2 {
    /// A zero displacement.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Euclidean length of the vector.
    pub fn norm(&self) -> f32 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared Euclidean length (no square root).
    pub fn norm_sq(&self) -> f32 {
        self.x * self.x + self.y * self.y
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:.2}, {:.2}>", self.x, self.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f32> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f32> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f32) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Add<Vec2> for Point2 {
    type Output = Point2;
    fn add(self, rhs: Vec2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Point2> for Point2 {
    type Output = Vec2;
    fn sub(self, rhs: Point2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

/// An axis-aligned bounding box, stored as `(left, top, width, height)` —
/// the 4-tuple representation used throughout the AdaVP paper.
///
/// Width and height must be non-negative; boxes with zero width or height
/// are valid but have zero [`area`](BoundingBox::area).
///
/// # Example
///
/// ```
/// use adavp_vision::geometry::BoundingBox;
/// let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
/// let b = BoundingBox::new(5.0, 5.0, 10.0, 10.0);
/// let iou = a.iou(&b);
/// assert!((iou - 25.0 / 175.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BoundingBox {
    /// Left edge (x of top-left corner).
    pub left: f32,
    /// Top edge (y of top-left corner).
    pub top: f32,
    /// Horizontal extent.
    pub width: f32,
    /// Vertical extent.
    pub height: f32,
}

impl BoundingBox {
    /// Creates a box from `(left, top, width, height)`.
    ///
    /// Negative width/height are clamped to zero.
    pub fn new(left: f32, top: f32, width: f32, height: f32) -> Self {
        Self {
            left,
            top,
            width: width.max(0.0),
            height: height.max(0.0),
        }
    }

    /// Creates a box from two opposite corners.
    pub fn from_corners(a: Point2, b: Point2) -> Self {
        let left = a.x.min(b.x);
        let top = a.y.min(b.y);
        Self::new(left, top, (a.x - b.x).abs(), (a.y - b.y).abs())
    }

    /// Creates a box centred on `center` with the given size.
    pub fn from_center(center: Point2, width: f32, height: f32) -> Self {
        Self::new(
            center.x - width / 2.0,
            center.y - height / 2.0,
            width,
            height,
        )
    }

    /// Right edge (exclusive).
    pub fn right(&self) -> f32 {
        self.left + self.width
    }

    /// Bottom edge (exclusive).
    pub fn bottom(&self) -> f32 {
        self.top + self.height
    }

    /// Centre point of the box.
    pub fn center(&self) -> Point2 {
        Point2::new(self.left + self.width / 2.0, self.top + self.height / 2.0)
    }

    /// Area in square pixels.
    pub fn area(&self) -> f32 {
        self.width * self.height
    }

    /// Whether the box has zero area.
    pub fn is_empty(&self) -> bool {
        self.width <= 0.0 || self.height <= 0.0
    }

    /// Whether `p` lies inside the box (edges inclusive on left/top,
    /// exclusive on right/bottom).
    pub fn contains(&self, p: Point2) -> bool {
        p.x >= self.left && p.x < self.right() && p.y >= self.top && p.y < self.bottom()
    }

    /// Intersection of two boxes, or `None` when they do not overlap.
    pub fn intersection(&self, other: &BoundingBox) -> Option<BoundingBox> {
        let left = self.left.max(other.left);
        let top = self.top.max(other.top);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if right > left && bottom > top {
            Some(BoundingBox::new(left, top, right - left, bottom - top))
        } else {
            None
        }
    }

    /// Smallest box containing both boxes.
    pub fn union_bounds(&self, other: &BoundingBox) -> BoundingBox {
        let left = self.left.min(other.left);
        let top = self.top.min(other.top);
        let right = self.right().max(other.right());
        let bottom = self.bottom().max(other.bottom());
        BoundingBox::new(left, top, right - left, bottom - top)
    }

    /// Intersection-over-union (Eq. 2 of the AdaVP paper).
    ///
    /// Returns a value in `[0, 1]`; `0` when the boxes are disjoint or both
    /// empty.
    pub fn iou(&self, other: &BoundingBox) -> f32 {
        let inter = match self.intersection(other) {
            Some(r) => r.area(),
            None => return 0.0,
        };
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// The box translated by displacement `v` — how the tracker shifts a
    /// detected box by the object's motion vector.
    pub fn translated(&self, v: Vec2) -> BoundingBox {
        BoundingBox::new(self.left + v.x, self.top + v.y, self.width, self.height)
    }

    /// The box scaled about its centre by `factor` (`> 1` grows).
    pub fn scaled(&self, factor: f32) -> BoundingBox {
        let c = self.center();
        BoundingBox::from_center(c, self.width * factor, self.height * factor)
    }

    /// The box clipped to the image rectangle `[0, w) x [0, h)`.
    ///
    /// Returns `None` when the box lies fully outside the image.
    pub fn clipped(&self, w: f32, h: f32) -> Option<BoundingBox> {
        self.intersection(&BoundingBox::new(0.0, 0.0, w, h))
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.1},{:.1} {:.1}x{:.1}]",
            self.left, self.top, self.width, self.height
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let p = Point2::new(1.0, 2.0);
        let q = Point2::new(4.0, 6.0);
        let v = q - p;
        assert_eq!(v, Vec2::new(3.0, 4.0));
        assert_eq!(v.norm(), 5.0);
        assert_eq!(p + v, q);
        assert_eq!(p.distance(q), 5.0);
        assert_eq!(p.distance_sq(q), 25.0);
    }

    #[test]
    fn vec_ops() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Vec2::new(4.0, 1.0));
        assert_eq!(Vec2::ZERO.norm(), 0.0);
        assert_eq!(a.norm_sq(), 5.0);
    }

    #[test]
    fn bbox_basics() {
        let b = BoundingBox::new(10.0, 20.0, 30.0, 40.0);
        assert_eq!(b.right(), 40.0);
        assert_eq!(b.bottom(), 60.0);
        assert_eq!(b.center(), Point2::new(25.0, 40.0));
        assert_eq!(b.area(), 1200.0);
        assert!(!b.is_empty());
        assert!(b.contains(Point2::new(10.0, 20.0)));
        assert!(!b.contains(Point2::new(40.0, 20.0)));
    }

    #[test]
    fn bbox_negative_size_clamped() {
        let b = BoundingBox::new(0.0, 0.0, -5.0, 10.0);
        assert_eq!(b.width, 0.0);
        assert!(b.is_empty());
        assert_eq!(b.area(), 0.0);
    }

    #[test]
    fn bbox_from_corners_order_independent() {
        let a = BoundingBox::from_corners(Point2::new(5.0, 8.0), Point2::new(1.0, 2.0));
        let b = BoundingBox::from_corners(Point2::new(1.0, 2.0), Point2::new(5.0, 8.0));
        assert_eq!(a, b);
        assert_eq!(a, BoundingBox::new(1.0, 2.0, 4.0, 6.0));
    }

    #[test]
    fn bbox_intersection_union() {
        let a = BoundingBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BoundingBox::new(5.0, 5.0, 10.0, 10.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, BoundingBox::new(5.0, 5.0, 5.0, 5.0));
        let u = a.union_bounds(&b);
        assert_eq!(u, BoundingBox::new(0.0, 0.0, 15.0, 15.0));

        let c = BoundingBox::new(100.0, 100.0, 5.0, 5.0);
        assert!(a.intersection(&c).is_none());
        assert_eq!(a.iou(&c), 0.0);
    }

    #[test]
    fn iou_identical_is_one() {
        let a = BoundingBox::new(3.0, 4.0, 7.0, 9.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_empty_boxes() {
        let a = BoundingBox::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(a.iou(&a), 0.0);
    }

    #[test]
    fn translate_scale_clip() {
        let b = BoundingBox::new(10.0, 10.0, 10.0, 10.0);
        let t = b.translated(Vec2::new(-5.0, 5.0));
        assert_eq!(t, BoundingBox::new(5.0, 15.0, 10.0, 10.0));

        let s = b.scaled(2.0);
        assert_eq!(s, BoundingBox::new(5.0, 5.0, 20.0, 20.0));

        let off = BoundingBox::new(-20.0, -20.0, 5.0, 5.0);
        assert!(off.clipped(100.0, 100.0).is_none());
        let partial = BoundingBox::new(-5.0, -5.0, 10.0, 10.0)
            .clipped(100.0, 100.0)
            .unwrap();
        assert_eq!(partial, BoundingBox::new(0.0, 0.0, 5.0, 5.0));
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", Point2::new(1.0, 2.0)), "(1.00, 2.00)");
        assert_eq!(format!("{}", Vec2::new(1.0, 2.0)), "<1.00, 2.00>");
        assert_eq!(
            format!("{}", BoundingBox::new(1.0, 2.0, 3.0, 4.0)),
            "[1.0,2.0 3.0x4.0]"
        );
    }
}
