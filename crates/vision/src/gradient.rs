//! Spatial-gradient and smoothing kernels.
//!
//! Provides Scharr gradients (the derivative filter both the Shi-Tomasi
//! corner response and the Lucas-Kanade normal equations are built from) and
//! a separable Gaussian blur used when constructing image pyramids.
//!
//! Both kernels are implemented as **separable row-slice passes** writing
//! into caller-provided buffers (`*_into` variants) so the per-frame hot
//! path allocates nothing: intermediate planes come from a
//! [`crate::scratch::ScratchPool`] and outputs are reused across frames.
//! The convenience wrappers ([`scharr_gradients`], [`gaussian_blur`]) keep
//! the original allocating signatures and produce bit-identical results —
//! all intermediate values are small integers, exactly representable in
//! `f32`, and the final division is by a power of two.

use crate::image::GrayImage;
use crate::perf;
use crate::scratch::ScratchPool;
use crate::simd;

/// Horizontal and vertical image derivatives as `f32` planes.
///
/// Produced by [`scharr_gradients`]; row-major, same dimensions as the
/// source image.
#[derive(Debug, Clone)]
pub struct GradientField {
    width: u32,
    height: u32,
    gx: Vec<f32>,
    gy: Vec<f32>,
}

impl GradientField {
    /// An empty 0x0 field, ready to be filled by
    /// [`scharr_gradients_into`] (which resizes it as needed).
    pub fn empty() -> Self {
        Self {
            width: 0,
            height: 0,
            gx: Vec::new(),
            gy: Vec::new(),
        }
    }

    /// Consumes the field, returning its `(gx, gy)` planes for recycling.
    pub fn into_planes(self) -> (Vec<f32>, Vec<f32>) {
        (self.gx, self.gy)
    }

    /// Rebuilds a field around recycled planes (e.g. from a
    /// [`ScratchPool`]); the field reports `0x0` until filled by
    /// [`scharr_gradients_into`], which reuses the planes' capacity.
    pub fn from_recycled_planes(gx: Vec<f32>, gy: Vec<f32>) -> Self {
        Self {
            width: 0,
            height: 0,
            gx,
            gy,
        }
    }

    /// Field width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Field height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        y as usize * self.width as usize + x as usize
    }

    /// Horizontal derivative at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn gx(&self, x: u32, y: u32) -> f32 {
        self.gx[self.index(x, y)]
    }

    /// Vertical derivative at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn gy(&self, x: u32, y: u32) -> f32 {
        self.gy[self.index(x, y)]
    }

    /// One row of the horizontal-derivative plane.
    #[inline]
    pub fn gx_row(&self, y: u32) -> &[f32] {
        let w = self.width as usize;
        &self.gx[y as usize * w..(y as usize + 1) * w]
    }

    /// One row of the vertical-derivative plane.
    #[inline]
    pub fn gy_row(&self, y: u32) -> &[f32] {
        let w = self.width as usize;
        &self.gy[y as usize * w..(y as usize + 1) * w]
    }

    /// The full horizontal-derivative plane, row-major.
    #[inline]
    pub fn gx_plane(&self) -> &[f32] {
        &self.gx
    }

    /// The full vertical-derivative plane, row-major.
    #[inline]
    pub fn gy_plane(&self) -> &[f32] {
        &self.gy
    }

    /// Bilinearly-interpolated horizontal derivative at fractional coordinates.
    pub fn sample_gx(&self, x: f32, y: f32) -> f32 {
        sample_plane(&self.gx, self.width, self.height, x, y)
    }

    /// Bilinearly-interpolated vertical derivative at fractional coordinates.
    pub fn sample_gy(&self, x: f32, y: f32) -> f32 {
        sample_plane(&self.gy, self.width, self.height, x, y)
    }

    /// [`GradientField::sample_gx`] with an interior fast path (single
    /// bounds test, direct indexing). Bit-identical values for every input.
    #[inline]
    pub fn sample_gx_fast(&self, x: f32, y: f32) -> f32 {
        sample_plane_fast(&self.gx, self.width, self.height, x, y)
    }

    /// [`GradientField::sample_gy`] with an interior fast path (single
    /// bounds test, direct indexing). Bit-identical values for every input.
    #[inline]
    pub fn sample_gy_fast(&self, x: f32, y: f32) -> f32 {
        sample_plane_fast(&self.gy, self.width, self.height, x, y)
    }
}

#[inline]
fn sample_plane_fast(plane: &[f32], w: u32, h: u32, x: f32, y: f32) -> f32 {
    let xf = x.floor();
    let yf = y.floor();
    let x0 = xf as i64;
    let y0 = yf as i64;
    if x0 >= 0 && y0 >= 0 && x0 + 1 < w as i64 && y0 + 1 < h as i64 {
        let tx = x - xf;
        let ty = y - yf;
        let ww = w as usize;
        let i = y0 as usize * ww + x0 as usize;
        let p00 = plane[i];
        let p10 = plane[i + 1];
        let p01 = plane[i + ww];
        let p11 = plane[i + ww + 1];
        let top = p00 + (p10 - p00) * tx;
        let bottom = p01 + (p11 - p01) * tx;
        top + (bottom - top) * ty
    } else {
        sample_plane(plane, w, h, x, y)
    }
}

fn sample_plane(plane: &[f32], w: u32, h: u32, x: f32, y: f32) -> f32 {
    let clamp = |v: i64, hi: u32| v.clamp(0, hi as i64 - 1) as usize;
    let xf = x.floor();
    let yf = y.floor();
    let tx = x - xf;
    let ty = y - yf;
    let x0 = clamp(xf as i64, w);
    let x1 = clamp(xf as i64 + 1, w);
    let y0 = clamp(yf as i64, h);
    let y1 = clamp(yf as i64 + 1, h);
    let at = |xx: usize, yy: usize| plane[yy * w as usize + xx];
    let top = at(x0, y0) + (at(x1, y0) - at(x0, y0)) * tx;
    let bottom = at(x0, y1) + (at(x1, y1) - at(x0, y1)) * tx;
    top + (bottom - top) * ty
}

/// Computes Scharr derivatives of `img` (normalized by 1/32 so that a unit
/// intensity ramp yields a unit gradient).
///
/// Border pixels use replicate addressing. Allocating wrapper around
/// [`scharr_gradients_into`].
pub fn scharr_gradients(img: &GrayImage) -> GradientField {
    let mut field = GradientField::empty();
    let mut pool = ScratchPool::new();
    scharr_gradients_into(img, &mut field, &mut pool);
    field
}

/// Computes Scharr derivatives of `img` into a reusable `field`, taking
/// intermediate planes from `pool`.
///
/// The Scharr kernels
///
/// ```text
/// Gx = [-3 0 3; -10 0 10; -3 0 3] / 32,   Gy = Gx^T
/// ```
///
/// are separable: `Gx` is a vertical `[3 10 3]` smooth followed by a
/// horizontal central difference (and transposed for `Gy`). With the
/// `simd` feature (default) a fused row-ring pass runs through the
/// [`crate::simd`] row helpers (borders handled outside the vectorized
/// spans); without it the retained [`scharr_gradients_into_scalar`]
/// two-pass baseline runs. Results are bit-identical to the direct 3x3
/// evaluation either way, because every intermediate value is an integer
/// below 2^24 and the lanes are independent pixels.
pub fn scharr_gradients_into(img: &GrayImage, field: &mut GradientField, pool: &mut ScratchPool) {
    #[cfg(feature = "simd")]
    scharr_gradients_into_vec(img, field, pool);
    #[cfg(not(feature = "simd"))]
    scharr_gradients_into_scalar(img, field, pool);
}

/// The fused single-pass implementation behind [`scharr_gradients_into`]
/// when the `simd` feature is on.
#[cfg(feature = "simd")]
// adavp-lint: allow(cast-truncation, item=scharr_gradients_into_vec, bound=4080) — u8 pixels widen to u16 (taps sum to 16, max 4080); smoothed u16 values widen to i32 for the central difference
fn scharr_gradients_into_vec(img: &GrayImage, field: &mut GradientField, pool: &mut ScratchPool) {
    let _timer = perf::ScopedTimer::new(|c| &mut c.gradient_ns);
    perf::record(|c| c.gradient_fields += 1);
    let w = img.width() as usize;
    let h = img.height() as usize;
    let len = w * h;
    field.width = img.width();
    field.height = img.height();
    // Every element of both planes is overwritten below, so a bare resize
    // (no clear) suffices — the old clear-then-resize re-zeroed two full
    // f32 planes per frame for nothing.
    field.gx.resize(len, 0.0);
    field.gy.resize(len, 0.0);

    // Row scratch (max smoothed value 16 * 255 = 4080, fits u16):
    //   vrow[x]    = 3 p(x, y-1) + 10 p(x, y) + 3 p(x, y+1)
    //   ring[r][x] = 3 p(x-1, r) + 10 p(x, r) + 3 p(x+1, r)
    // One fused pass: the ring holds the horizontally smoothed rows y-1,
    // y, y+1 (row y+1 is produced just before it is needed, overwriting
    // the slot of row y-2), and both gradient rows for y are emitted while
    // everything is still in L1 — no full-plane intermediates. The
    // per-element arithmetic is exactly the retained two-pass scalar
    // baseline's, so the planes are bit-identical.
    let mut vrow = pool.take_u16(w);
    let mut ring = [pool.take_u16(w), pool.take_u16(w), pool.take_u16(w)];
    let data = img.as_bytes();
    let hsm = |mid: &[u8], dst: &mut [u16]| {
        dst[0] = 13 * mid[0] as u16 + 3 * mid[1.min(w - 1)] as u16;
        if w > 2 {
            simd::smooth313_h_row(mid, &mut dst[1..w - 1]);
        }
        if w > 1 {
            dst[w - 1] = 3 * mid[w - 2] as u16 + 13 * mid[w - 1] as u16;
        }
    };
    if len > 0 {
        hsm(&data[..w], &mut ring[0]);
        if h > 1 {
            hsm(&data[w..2 * w], &mut ring[1]);
        }
    }

    // Per row: gx = (vsmooth(x+1) - vsmooth(x-1)) / 32 with replicated
    // borders, gy = (hsmooth(y+1) - hsmooth(y-1)) / 32 with clamped rows.
    const NORM: f32 = 1.0 / 32.0;
    for y in 0..h {
        if y > 0 && y + 1 < h {
            let nxt = y + 1;
            hsm(&data[nxt * w..(nxt + 1) * w], &mut ring[nxt % 3]);
        }
        let up_r = y.saturating_sub(1);
        let dn_r = (y + 1).min(h - 1);
        simd::smooth313_v_row(
            &data[up_r * w..up_r * w + w],
            &data[y * w..y * w + w],
            &data[dn_r * w..dn_r * w + w],
            &mut vrow,
        );

        let gxr = &mut field.gx[y * w..(y + 1) * w];
        if w >= 2 {
            gxr[0] = (vrow[1] as i32 - vrow[0] as i32) as f32 * NORM;
            simd::diff_norm_row(&vrow[2..], &vrow[..w - 2], NORM, &mut gxr[1..w - 1]);
            gxr[w - 1] = (vrow[w - 1] as i32 - vrow[w - 2] as i32) as f32 * NORM;
        } else {
            gxr[0] = 0.0;
        }

        let gyr = &mut field.gy[y * w..(y + 1) * w];
        simd::diff_norm_row(&ring[dn_r % 3], &ring[up_r % 3], NORM, gyr);
    }

    pool.recycle_u16(vrow);
    let [r0, r1, r2] = ring;
    pool.recycle_u16(r0);
    pool.recycle_u16(r1);
    pool.recycle_u16(r2);
}

/// The pre-vectorization [`scharr_gradients_into`]: plain per-pixel loops
/// and clear-then-resize plane reuse. Retained verbatim as the scalar
/// baseline for parity tests and the `scharr_scalar_256` bench entry;
/// produces bit-identical planes.
// adavp-lint: allow(cast-truncation, item=scharr_gradients_into_scalar, bound=4080) — same fixed-point bounds as the vectorized path: smoothing acc <= 16*255 = 4080, differences in [-4080, 4080]
pub fn scharr_gradients_into_scalar(
    img: &GrayImage,
    field: &mut GradientField,
    pool: &mut ScratchPool,
) {
    let _timer = perf::ScopedTimer::new(|c| &mut c.gradient_ns);
    perf::record(|c| c.gradient_fields += 1);
    let w = img.width() as usize;
    let h = img.height() as usize;
    let len = w * h;
    field.width = img.width();
    field.height = img.height();
    field.gx.clear();
    field.gx.resize(len, 0.0);
    field.gy.clear();
    field.gy.resize(len, 0.0);

    let mut vsmooth = pool.take_u16(len);
    let mut hsmooth = pool.take_u16(len);
    let data = img.as_bytes();
    for y in 0..h {
        let up = &data[y.saturating_sub(1) * w..y.saturating_sub(1) * w + w];
        let mid = &data[y * w..y * w + w];
        let dn_y = (y + 1).min(h - 1);
        let dn = &data[dn_y * w..dn_y * w + w];
        let vrow = &mut vsmooth[y * w..(y + 1) * w];
        for x in 0..w {
            vrow[x] = 3 * up[x] as u16 + 10 * mid[x] as u16 + 3 * dn[x] as u16;
        }
        let hrow = &mut hsmooth[y * w..(y + 1) * w];
        hrow[0] = 13 * mid[0] as u16 + 3 * mid[1.min(w - 1)] as u16;
        for x in 1..w.saturating_sub(1) {
            hrow[x] = 3 * mid[x - 1] as u16 + 10 * mid[x] as u16 + 3 * mid[x + 1] as u16;
        }
        if w > 1 {
            hrow[w - 1] = 3 * mid[w - 2] as u16 + 13 * mid[w - 1] as u16;
        }
    }

    const NORM: f32 = 1.0 / 32.0;
    for y in 0..h {
        let vrow = &vsmooth[y * w..(y + 1) * w];
        let gxr = &mut field.gx[y * w..(y + 1) * w];
        if w >= 2 {
            gxr[0] = (vrow[1] as i32 - vrow[0] as i32) as f32 * NORM;
            for x in 1..w - 1 {
                gxr[x] = (vrow[x + 1] as i32 - vrow[x - 1] as i32) as f32 * NORM;
            }
            gxr[w - 1] = (vrow[w - 1] as i32 - vrow[w - 2] as i32) as f32 * NORM;
        } else {
            gxr[0] = 0.0;
        }

        let up = &hsmooth[y.saturating_sub(1) * w..y.saturating_sub(1) * w + w];
        let dn_y = (y + 1).min(h - 1);
        let dn = &hsmooth[dn_y * w..dn_y * w + w];
        let gyr = &mut field.gy[y * w..(y + 1) * w];
        for x in 0..w {
            gyr[x] = (dn[x] as i32 - up[x] as i32) as f32 * NORM;
        }
    }

    pool.recycle_u16(vsmooth);
    pool.recycle_u16(hsmooth);
}

/// Raw fixed-point Scharr derivatives: row-major `i16` planes holding
/// `32 * gradient` (range `[-4080, 4080]`).
///
/// This is the narrowest exact representation of an 8-bit image's Scharr
/// response — half the bytes of a [`GradientField`], which matters when a
/// consumer stores or streams many fields and can defer the (lossless)
/// widening to [`GradientFieldI16::to_f32_into`].
#[derive(Debug, Clone)]
pub struct GradientFieldI16 {
    width: u32,
    height: u32,
    gx: Vec<i16>,
    gy: Vec<i16>,
}

impl GradientFieldI16 {
    /// An empty 0x0 field, ready to be filled by
    /// [`scharr_gradients_i16_into`].
    pub fn empty() -> Self {
        Self {
            width: 0,
            height: 0,
            gx: Vec::new(),
            gy: Vec::new(),
        }
    }

    /// Consumes the field, returning its `(gx, gy)` planes for recycling.
    pub fn into_planes(self) -> (Vec<i16>, Vec<i16>) {
        (self.gx, self.gy)
    }

    /// Field width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Field height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw horizontal derivative (`32 * gx`) at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn gx_raw(&self, x: u32, y: u32) -> i16 {
        self.gx[y as usize * self.width as usize + x as usize]
    }

    /// Raw vertical derivative (`32 * gy`) at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn gy_raw(&self, x: u32, y: u32) -> i16 {
        self.gy[y as usize * self.width as usize + x as usize]
    }

    /// Widens this field into a normalized `f32` [`GradientField`].
    ///
    /// Lossless: every raw value is an integer in `[-4080, 4080]` and the
    /// 1/32 normalization is a power of two, so the result is bit-identical
    /// to computing [`scharr_gradients_into`] directly.
    pub fn to_f32_into(&self, field: &mut GradientField) {
        let len = self.gx.len();
        field.width = self.width;
        field.height = self.height;
        field.gx.resize(len, 0.0);
        field.gy.resize(len, 0.0);
        const NORM: f32 = 1.0 / 32.0;
        simd::i16_norm_row(&self.gx, NORM, &mut field.gx);
        simd::i16_norm_row(&self.gy, NORM, &mut field.gy);
    }
}

/// [`scharr_gradients_into`] producing raw `i16` fixed-point planes
/// (`32 * gradient`) instead of normalized `f32`.
///
/// Same separable smoothing passes; the final differencing stays in
/// integer arithmetic ([`simd::diff_i16_row`]), so this writes half the
/// output bytes of the `f32` kernel. Widening the result with
/// [`GradientFieldI16::to_f32_into`] reproduces the `f32` kernel's planes
/// bit for bit.
// adavp-lint: allow(cast-truncation, item=scharr_gradients_i16_into, bound=4080) — smoothing acc <= 4080 in u16; raw differences in [-4080, 4080] fit i16 exactly
pub fn scharr_gradients_i16_into(
    img: &GrayImage,
    field: &mut GradientFieldI16,
    pool: &mut ScratchPool,
) {
    let _timer = perf::ScopedTimer::new(|c| &mut c.gradient_ns);
    let w = img.width() as usize;
    let h = img.height() as usize;
    let len = w * h;
    perf::record(|c| c.fixed_point_rows += h as u64);
    field.width = img.width();
    field.height = img.height();
    field.gx.resize(len, 0);
    field.gy.resize(len, 0);

    // Same fused row-ring structure as the `f32` kernel; only the final
    // differencing stays in `i16`.
    let mut vrow = pool.take_u16(w);
    let mut ring = [pool.take_u16(w), pool.take_u16(w), pool.take_u16(w)];
    let data = img.as_bytes();
    let hsm = |mid: &[u8], dst: &mut [u16]| {
        dst[0] = 13 * mid[0] as u16 + 3 * mid[1.min(w - 1)] as u16;
        if w > 2 {
            simd::smooth313_h_row(mid, &mut dst[1..w - 1]);
        }
        if w > 1 {
            dst[w - 1] = 3 * mid[w - 2] as u16 + 13 * mid[w - 1] as u16;
        }
    };
    if len > 0 {
        hsm(&data[..w], &mut ring[0]);
        if h > 1 {
            hsm(&data[w..2 * w], &mut ring[1]);
        }
    }

    for y in 0..h {
        if y > 0 && y + 1 < h {
            let nxt = y + 1;
            hsm(&data[nxt * w..(nxt + 1) * w], &mut ring[nxt % 3]);
        }
        let up_r = y.saturating_sub(1);
        let dn_r = (y + 1).min(h - 1);
        simd::smooth313_v_row(
            &data[up_r * w..up_r * w + w],
            &data[y * w..y * w + w],
            &data[dn_r * w..dn_r * w + w],
            &mut vrow,
        );

        let gxr = &mut field.gx[y * w..(y + 1) * w];
        if w >= 2 {
            gxr[0] = (vrow[1] as i32 - vrow[0] as i32) as i16;
            simd::diff_i16_row(&vrow[2..], &vrow[..w - 2], &mut gxr[1..w - 1]);
            gxr[w - 1] = (vrow[w - 1] as i32 - vrow[w - 2] as i32) as i16;
        } else {
            gxr[0] = 0;
        }

        let gyr = &mut field.gy[y * w..(y + 1) * w];
        simd::diff_i16_row(&ring[dn_r % 3], &ring[up_r % 3], gyr);
    }

    pool.recycle_u16(vrow);
    let [r0, r1, r2] = ring;
    pool.recycle_u16(r0);
    pool.recycle_u16(r1);
    pool.recycle_u16(r2);
}

/// Separable Gaussian blur with a 5-tap binomial kernel `[1 4 6 4 1] / 16`.
///
/// Used to pre-smooth images before pyramid downsampling so the Lucas-Kanade
/// linearization holds at coarse levels. Allocating wrapper around
/// [`gaussian_blur_into`].
pub fn gaussian_blur(img: &GrayImage) -> GrayImage {
    let mut out = GrayImage::new(img.width(), img.height());
    let mut pool = ScratchPool::new();
    gaussian_blur_into(img, &mut out, &mut pool);
    out
}

/// [`gaussian_blur`] into a caller-provided output image of the same size,
/// taking the intermediate plane from `pool`.
///
/// Both separable passes run on row slices; only the four border
/// rows/columns take the clamped slow path. With the `fixed-point` feature
/// (default) the interior rows run through the `u16` [`crate::simd`]
/// helpers ([`simd::blur5_h_row`] / [`simd::blur5_v_row`]); otherwise the
/// retained [`gaussian_blur_into_scalar`] wide-integer path runs. Output
/// bytes are identical either way (the accumulator maxes at
/// `16 * 255 = 4080`, exact in both widths).
///
/// # Panics
///
/// Panics if `out` dimensions differ from `img`.
pub fn gaussian_blur_into(img: &GrayImage, out: &mut GrayImage, pool: &mut ScratchPool) {
    #[cfg(feature = "fixed-point")]
    gaussian_blur_into_fixed(img, out, pool);
    #[cfg(not(feature = "fixed-point"))]
    gaussian_blur_into_scalar(img, out, pool);
}

/// Fixed-point [`gaussian_blur_into`]: `u16` accumulators and vectorized
/// interior rows. Bit-identical to [`gaussian_blur_into_scalar`].
///
/// # Panics
///
/// Panics if `out` dimensions differ from `img`.
// adavp-lint: allow(cast-truncation, item=gaussian_blur_into_fixed, bound=255) — widening u8 pixel reads into the u16 tap accumulator (max 16*255 = 4080)
pub fn gaussian_blur_into_fixed(img: &GrayImage, out: &mut GrayImage, pool: &mut ScratchPool) {
    assert!(
        out.width() == img.width() && out.height() == img.height(),
        "blur output must match input dimensions"
    );
    const K: [u16; 5] = [1, 4, 6, 4, 1];
    let w = img.width() as usize;
    let h = img.height() as usize;
    perf::record(|c| {
        c.gaussian_blurs += 1;
        c.fixed_point_rows += h as u64;
    });
    let data = img.as_bytes();

    // Horizontal pass into a u16 plane (max 255 * 16 = 4080 < 65535, so
    // the narrow accumulator is exact).
    let mut tmp = pool.take_u16(w * h);
    for y in 0..h {
        let src = &data[y * w..(y + 1) * w];
        let dst = &mut tmp[y * w..(y + 1) * w];
        if w >= 5 {
            // Borders (2 pixels each side) with clamped addressing.
            for x in [0usize, 1, w - 2, w - 1] {
                let mut acc = 0u16;
                for (k, &kv) in K.iter().enumerate() {
                    let sx = (x as i64 + k as i64 - 2).clamp(0, w as i64 - 1) as usize;
                    acc += kv * src[sx] as u16;
                }
                dst[x] = acc / 16;
            }
            simd::blur5_h_row(src, &mut dst[2..w - 2]);
        } else {
            for (x, d) in dst.iter_mut().enumerate() {
                let mut acc = 0u16;
                for (k, &kv) in K.iter().enumerate() {
                    let sx = (x as i64 + k as i64 - 2).clamp(0, w as i64 - 1) as usize;
                    acc += kv * src[sx] as u16;
                }
                *d = acc / 16;
            }
        }
    }

    // Vertical pass over clamped row slices of the intermediate plane.
    let out_bytes = out.as_mut_bytes();
    for y in 0..h {
        let yy = y as i64;
        let row = |ry: i64| -> &[u16] {
            let cy = ry.clamp(0, h as i64 - 1) as usize;
            &tmp[cy * w..(cy + 1) * w]
        };
        let (r0, r1, r2, r3, r4) = (row(yy - 2), row(yy - 1), row(yy), row(yy + 1), row(yy + 2));
        let dst = &mut out_bytes[y * w..(y + 1) * w];
        simd::blur5_v_row(r0, r1, r2, r3, r4, dst);
    }
    pool.recycle_u16(tmp);
}

/// The pre-vectorization [`gaussian_blur_into`] with `u32` accumulators.
/// Retained verbatim as the scalar baseline for parity tests and the
/// `gaussian_blur_scalar_256` bench entry; produces identical bytes.
///
/// # Panics
///
/// Panics if `out` dimensions differ from `img`.
// adavp-lint: allow(cast-truncation, item=gaussian_blur_into_scalar, bound=255) — u8 pixels widen to u32; acc <= 4080 so acc/16 <= 255 fits both the u16 staging row and the final u8 store
pub fn gaussian_blur_into_scalar(img: &GrayImage, out: &mut GrayImage, pool: &mut ScratchPool) {
    assert!(
        out.width() == img.width() && out.height() == img.height(),
        "blur output must match input dimensions"
    );
    perf::record(|c| c.gaussian_blurs += 1);
    const K: [u32; 5] = [1, 4, 6, 4, 1];
    let w = img.width() as usize;
    let h = img.height() as usize;
    let data = img.as_bytes();

    // Horizontal pass into a u16 plane (max 255 * 16 = 4080 < 65535).
    let mut tmp = pool.take_u16(w * h);
    for y in 0..h {
        let src = &data[y * w..(y + 1) * w];
        let dst = &mut tmp[y * w..(y + 1) * w];
        if w >= 5 {
            // Borders (2 pixels each side) with clamped addressing.
            for x in [0usize, 1, w - 2, w - 1] {
                let mut acc = 0u32;
                for (k, &kv) in K.iter().enumerate() {
                    let sx = (x as i64 + k as i64 - 2).clamp(0, w as i64 - 1) as usize;
                    acc += kv * src[sx] as u32;
                }
                dst[x] = (acc / 16) as u16;
            }
            // Interior on raw slices.
            for x in 2..w - 2 {
                let acc = src[x - 2] as u32
                    + 4 * src[x - 1] as u32
                    + 6 * src[x] as u32
                    + 4 * src[x + 1] as u32
                    + src[x + 2] as u32;
                dst[x] = (acc / 16) as u16;
            }
        } else {
            for (x, d) in dst.iter_mut().enumerate() {
                let mut acc = 0u32;
                for (k, &kv) in K.iter().enumerate() {
                    let sx = (x as i64 + k as i64 - 2).clamp(0, w as i64 - 1) as usize;
                    acc += kv * src[sx] as u32;
                }
                *d = (acc / 16) as u16;
            }
        }
    }

    // Vertical pass over row slices of the intermediate plane.
    let row = |y: i64| -> &[u16] {
        let cy = y.clamp(0, h as i64 - 1) as usize;
        &tmp[cy * w..(cy + 1) * w]
    };
    for y in 0..h {
        let yy = y as i64;
        let (r0, r1, r2, r3, r4) = (row(yy - 2), row(yy - 1), row(yy), row(yy + 1), row(yy + 2));
        let dst = &mut out.as_mut_bytes()[y * w..(y + 1) * w];
        for (x, d) in dst.iter_mut().enumerate() {
            let acc = r0[x] as u32
                + 4 * r1[x] as u32
                + 6 * r2[x] as u32
                + 4 * r3[x] as u32
                + r4[x] as u32;
            *d = (acc / 16).min(255) as u8;
        }
    }
    pool.recycle_u16(tmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_flat_image_is_zero() {
        let img = GrayImage::from_fn(8, 8, |_, _| 77);
        let g = scharr_gradients(&img);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(g.gx(x, y), 0.0);
                assert_eq!(g.gy(x, y), 0.0);
            }
        }
    }

    #[test]
    fn gradient_of_horizontal_ramp() {
        // intensity = 10 * x -> gx = 10, gy = 0 (away from borders).
        let img = GrayImage::from_fn(16, 16, |x, _| (x * 10).min(255) as u8);
        let g = scharr_gradients(&img);
        for y in 2..14 {
            for x in 2..14 {
                if (x * 10) < 245 && ((x + 1) * 10) < 245 {
                    assert!(
                        (g.gx(x, y) - 10.0).abs() < 1e-3,
                        "gx at ({x},{y}) = {}",
                        g.gx(x, y)
                    );
                    assert!(g.gy(x, y).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn gradient_of_vertical_ramp() {
        let img = GrayImage::from_fn(16, 16, |_, y| (y * 8) as u8);
        let g = scharr_gradients(&img);
        for y in 2..14 {
            for x in 2..14 {
                assert!((g.gy(x, y) - 8.0).abs() < 1e-3);
                assert!(g.gx(x, y).abs() < 1e-3);
            }
        }
    }

    /// Direct (non-separable) 3x3 Scharr evaluation: the original
    /// implementation, kept as the differential-testing oracle.
    fn scharr_reference(img: &GrayImage) -> (Vec<f32>, Vec<f32>) {
        let w = img.width();
        let h = img.height();
        let mut gx = vec![0.0f32; w as usize * h as usize];
        let mut gy = vec![0.0f32; w as usize * h as usize];
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let p = |dx: i64, dy: i64| img.get_clamped(x + dx, y + dy) as f32;
                let sx = -3.0 * p(-1, -1) + 3.0 * p(1, -1) - 10.0 * p(-1, 0) + 10.0 * p(1, 0)
                    - 3.0 * p(-1, 1)
                    + 3.0 * p(1, 1);
                let sy = -3.0 * p(-1, -1) - 10.0 * p(0, -1) - 3.0 * p(1, -1)
                    + 3.0 * p(-1, 1)
                    + 10.0 * p(0, 1)
                    + 3.0 * p(1, 1);
                let i = y as usize * w as usize + x as usize;
                gx[i] = sx / 32.0;
                gy[i] = sy / 32.0;
            }
        }
        (gx, gy)
    }

    #[test]
    fn separable_matches_direct_evaluation_exactly() {
        for (w, h) in [(16u32, 16u32), (7, 5), (1, 9), (9, 1), (2, 2), (33, 17)] {
            let img = GrayImage::from_fn(w, h, |x, y| {
                ((x.wrapping_mul(131) ^ y.wrapping_mul(37)).wrapping_add(x * y)) as u8
            });
            let g = scharr_gradients(&img);
            let (rx, ry) = scharr_reference(&img);
            for y in 0..h {
                for x in 0..w {
                    let i = (y * w + x) as usize;
                    assert_eq!(g.gx(x, y), rx[i], "gx mismatch at ({x},{y}) {w}x{h}");
                    assert_eq!(g.gy(x, y), ry[i], "gy mismatch at ({x},{y}) {w}x{h}");
                }
            }
        }
    }

    #[test]
    fn vectorized_scharr_matches_scalar_baseline_bit_for_bit() {
        for (w, h) in [(16u32, 16u32), (7, 5), (1, 9), (9, 1), (2, 2), (33, 17)] {
            let img = GrayImage::from_fn(w, h, |x, y| {
                ((x.wrapping_mul(151) ^ y.wrapping_mul(41)).wrapping_add(x + 3 * y)) as u8
            });
            let mut pool = ScratchPool::new();
            let mut fast = GradientField::empty();
            scharr_gradients_into(&img, &mut fast, &mut pool);
            let mut scalar = GradientField::empty();
            scharr_gradients_into_scalar(&img, &mut scalar, &mut pool);
            assert_eq!(fast.gx, scalar.gx, "gx diverged at {w}x{h}");
            assert_eq!(fast.gy, scalar.gy, "gy diverged at {w}x{h}");
        }
    }

    #[test]
    fn i16_scharr_widens_to_f32_field_bit_for_bit() {
        for (w, h) in [(16u32, 16u32), (7, 5), (1, 9), (9, 1), (2, 2), (33, 17)] {
            let img = GrayImage::from_fn(w, h, |x, y| {
                ((x.wrapping_mul(131) ^ y.wrapping_mul(37)).wrapping_add(x * y)) as u8
            });
            let mut pool = ScratchPool::new();
            let mut raw = GradientFieldI16::empty();
            scharr_gradients_i16_into(&img, &mut raw, &mut pool);
            let mut widened = GradientField::empty();
            raw.to_f32_into(&mut widened);
            let mut oracle = GradientField::empty();
            scharr_gradients_into(&img, &mut oracle, &mut pool);
            assert_eq!((widened.width(), widened.height()), (w, h));
            assert_eq!(widened.gx, oracle.gx, "gx diverged at {w}x{h}");
            assert_eq!(widened.gy, oracle.gy, "gy diverged at {w}x{h}");
            // Raw values really are 32x the normalized gradient.
            for y in 0..h {
                for x in 0..w {
                    assert_eq!(raw.gx_raw(x, y) as f32, oracle.gx(x, y) * 32.0);
                    assert_eq!(raw.gy_raw(x, y) as f32, oracle.gy(x, y) * 32.0);
                }
            }
        }
    }

    #[test]
    fn fixed_point_blur_matches_scalar_baseline_bytes() {
        for (w, h) in [(10u32, 10u32), (5, 5), (4, 7), (3, 3), (1, 6), (31, 9)] {
            let img = GrayImage::from_fn(w, h, |x, y| {
                (x.wrapping_mul(89) ^ y.wrapping_mul(53)).wrapping_add(13 * x) as u8
            });
            let mut pool = ScratchPool::new();
            let mut fixed = GrayImage::new(w, h);
            gaussian_blur_into_fixed(&img, &mut fixed, &mut pool);
            let mut scalar = GrayImage::new(w, h);
            gaussian_blur_into_scalar(&img, &mut scalar, &mut pool);
            assert_eq!(fixed, scalar, "blur bytes diverged at {w}x{h}");
        }
        // Saturating content: all-255 image must survive both paths.
        let max = GrayImage::from_fn(9, 9, |_, _| 255);
        let mut pool = ScratchPool::new();
        let mut fixed = GrayImage::new(9, 9);
        gaussian_blur_into_fixed(&max, &mut fixed, &mut pool);
        assert!(fixed.as_bytes().iter().all(|&v| v == 255));
    }

    #[test]
    fn into_variant_reuses_field_buffers() {
        let a = GrayImage::from_fn(12, 10, |x, y| (x * 3 + y) as u8);
        let b = GrayImage::from_fn(8, 8, |x, y| (x ^ y) as u8);
        let mut field = GradientField::empty();
        let mut pool = ScratchPool::new();
        scharr_gradients_into(&a, &mut field, &mut pool);
        assert_eq!((field.width(), field.height()), (12, 10));
        crate::perf::reset();
        scharr_gradients_into(&b, &mut field, &mut pool);
        assert_eq!((field.width(), field.height()), (8, 8));
        let work = crate::perf::snapshot();
        assert_eq!(
            work.buffers_allocated, 0,
            "smoothing scratch must be pooled"
        );
        // The fused pass takes 4 row buffers; the scalar baseline takes 2
        // full planes.
        let expected = if cfg!(feature = "simd") { 4 } else { 2 };
        assert_eq!(work.buffers_reused, expected);
        let oracle = scharr_gradients(&b);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(field.gx(x, y), oracle.gx(x, y));
                assert_eq!(field.gy(x, y), oracle.gy(x, y));
            }
        }
    }

    #[test]
    fn gradient_sampling_interpolates() {
        let img = GrayImage::from_fn(16, 16, |x, _| (x * 10).min(255) as u8);
        let g = scharr_gradients(&img);
        let v = g.sample_gx(5.5, 5.5);
        assert!((v - 10.0).abs() < 1e-3);
        // Out-of-bounds sampling clamps, never panics.
        let _ = g.sample_gx(-10.0, -10.0);
        let _ = g.sample_gy(100.0, 100.0);
    }

    #[test]
    fn dimensions_preserved() {
        let img = GrayImage::new(7, 5);
        let g = scharr_gradients(&img);
        assert_eq!((g.width(), g.height()), (7, 5));
        let b = gaussian_blur(&img);
        assert_eq!((b.width(), b.height()), (7, 5));
    }

    #[test]
    fn blur_preserves_flat_regions() {
        let img = GrayImage::from_fn(10, 10, |_, _| 128);
        let b = gaussian_blur(&img);
        for y in 0..10 {
            for x in 0..10 {
                assert!((b.get(x, y) as i32 - 128).abs() <= 1);
            }
        }
    }

    /// The original two-pass clamped-get blur, kept as the oracle.
    fn blur_reference(img: &GrayImage) -> GrayImage {
        const K: [u32; 5] = [1, 4, 6, 4, 1];
        let w = img.width();
        let h = img.height();
        let mut tmp = vec![0u16; w as usize * h as usize];
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let mut acc = 0u32;
                for (k, &kv) in K.iter().enumerate() {
                    acc += kv * img.get_clamped(x + k as i64 - 2, y) as u32;
                }
                tmp[y as usize * w as usize + x as usize] = (acc / 16) as u16;
            }
        }
        let tmp_at = |x: i64, y: i64| -> u32 {
            let cx = x.clamp(0, w as i64 - 1) as usize;
            let cy = y.clamp(0, h as i64 - 1) as usize;
            tmp[cy * w as usize + cx] as u32
        };
        let mut out = GrayImage::new(w, h);
        for y in 0..h as i64 {
            for x in 0..w as i64 {
                let mut acc = 0u32;
                for (k, &kv) in K.iter().enumerate() {
                    acc += kv * tmp_at(x, y + k as i64 - 2);
                }
                out.set(x as u32, y as u32, (acc / 16).min(255) as u8);
            }
        }
        out
    }

    #[test]
    fn slice_blur_matches_reference_exactly() {
        for (w, h) in [(10u32, 10u32), (5, 5), (4, 7), (3, 3), (1, 6), (31, 9)] {
            let img = GrayImage::from_fn(w, h, |x, y| {
                (x.wrapping_mul(89) ^ y.wrapping_mul(53)).wrapping_add(13 * x) as u8
            });
            assert_eq!(
                gaussian_blur(&img),
                blur_reference(&img),
                "blur mismatch at {w}x{h}"
            );
        }
    }

    #[test]
    fn blur_smooths_impulse() {
        let mut img = GrayImage::new(9, 9);
        img.set(4, 4, 255);
        let b = gaussian_blur(&img);
        // Impulse energy spreads: centre is reduced, neighbours nonzero.
        assert!(b.get(4, 4) < 255);
        assert!(b.get(3, 4) > 0);
        assert!(b.get(4, 3) > 0);
        // Far corner untouched.
        assert_eq!(b.get(0, 0), 0);
    }
}
