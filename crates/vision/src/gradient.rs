//! Spatial-gradient and smoothing kernels.
//!
//! Provides Scharr gradients (the derivative filter both the Shi-Tomasi
//! corner response and the Lucas-Kanade normal equations are built from) and
//! a separable Gaussian blur used when constructing image pyramids.

use crate::image::GrayImage;

/// Horizontal and vertical image derivatives as `f32` planes.
///
/// Produced by [`scharr_gradients`]; row-major, same dimensions as the
/// source image.
#[derive(Debug, Clone)]
pub struct GradientField {
    width: u32,
    height: u32,
    gx: Vec<f32>,
    gy: Vec<f32>,
}

impl GradientField {
    /// Field width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Field height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        y as usize * self.width as usize + x as usize
    }

    /// Horizontal derivative at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn gx(&self, x: u32, y: u32) -> f32 {
        self.gx[self.index(x, y)]
    }

    /// Vertical derivative at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn gy(&self, x: u32, y: u32) -> f32 {
        self.gy[self.index(x, y)]
    }

    /// Bilinearly-interpolated horizontal derivative at fractional coordinates.
    pub fn sample_gx(&self, x: f32, y: f32) -> f32 {
        sample_plane(&self.gx, self.width, self.height, x, y)
    }

    /// Bilinearly-interpolated vertical derivative at fractional coordinates.
    pub fn sample_gy(&self, x: f32, y: f32) -> f32 {
        sample_plane(&self.gy, self.width, self.height, x, y)
    }
}

fn sample_plane(plane: &[f32], w: u32, h: u32, x: f32, y: f32) -> f32 {
    let clamp = |v: i64, hi: u32| v.clamp(0, hi as i64 - 1) as usize;
    let xf = x.floor();
    let yf = y.floor();
    let tx = x - xf;
    let ty = y - yf;
    let x0 = clamp(xf as i64, w);
    let x1 = clamp(xf as i64 + 1, w);
    let y0 = clamp(yf as i64, h);
    let y1 = clamp(yf as i64 + 1, h);
    let at = |xx: usize, yy: usize| plane[yy * w as usize + xx];
    let top = at(x0, y0) + (at(x1, y0) - at(x0, y0)) * tx;
    let bottom = at(x0, y1) + (at(x1, y1) - at(x0, y1)) * tx;
    top + (bottom - top) * ty
}

/// Computes Scharr derivatives of `img` (normalized by 1/32 so that a unit
/// intensity ramp yields a unit gradient).
///
/// Border pixels use replicate addressing.
pub fn scharr_gradients(img: &GrayImage) -> GradientField {
    let w = img.width();
    let h = img.height();
    let mut gx = vec![0.0f32; w as usize * h as usize];
    let mut gy = vec![0.0f32; w as usize * h as usize];
    // Scharr kernels:
    //   Gx = [-3 0 3; -10 0 10; -3 0 3] / 32
    //   Gy = transpose(Gx)
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let p = |dx: i64, dy: i64| img.get_clamped(x + dx, y + dy) as f32;
            let sx = -3.0 * p(-1, -1) + 3.0 * p(1, -1) - 10.0 * p(-1, 0) + 10.0 * p(1, 0)
                - 3.0 * p(-1, 1)
                + 3.0 * p(1, 1);
            let sy = -3.0 * p(-1, -1) - 10.0 * p(0, -1) - 3.0 * p(1, -1)
                + 3.0 * p(-1, 1)
                + 10.0 * p(0, 1)
                + 3.0 * p(1, 1);
            let i = y as usize * w as usize + x as usize;
            gx[i] = sx / 32.0;
            gy[i] = sy / 32.0;
        }
    }
    GradientField {
        width: w,
        height: h,
        gx,
        gy,
    }
}

/// Separable Gaussian blur with a 5-tap binomial kernel `[1 4 6 4 1] / 16`.
///
/// Used to pre-smooth images before pyramid downsampling so the Lucas-Kanade
/// linearization holds at coarse levels.
pub fn gaussian_blur(img: &GrayImage) -> GrayImage {
    const K: [u32; 5] = [1, 4, 6, 4, 1];
    let w = img.width();
    let h = img.height();
    // Horizontal pass into u16 buffer (max 255*16 fits in u16? 4080 < 65535 yes).
    let mut tmp = vec![0u16; w as usize * h as usize];
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let mut acc = 0u32;
            for (k, &kv) in K.iter().enumerate() {
                acc += kv * img.get_clamped(x + k as i64 - 2, y) as u32;
            }
            tmp[y as usize * w as usize + x as usize] = (acc / 16) as u16;
        }
    }
    let tmp_at = |x: i64, y: i64| -> u32 {
        let cx = x.clamp(0, w as i64 - 1) as usize;
        let cy = y.clamp(0, h as i64 - 1) as usize;
        tmp[cy * w as usize + cx] as u32
    };
    let mut out = GrayImage::new(w, h);
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let mut acc = 0u32;
            for (k, &kv) in K.iter().enumerate() {
                acc += kv * tmp_at(x, y + k as i64 - 2);
            }
            out.set(x as u32, y as u32, (acc / 16).min(255) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_flat_image_is_zero() {
        let img = GrayImage::from_fn(8, 8, |_, _| 77);
        let g = scharr_gradients(&img);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(g.gx(x, y), 0.0);
                assert_eq!(g.gy(x, y), 0.0);
            }
        }
    }

    #[test]
    fn gradient_of_horizontal_ramp() {
        // intensity = 10 * x -> gx = 10, gy = 0 (away from borders).
        let img = GrayImage::from_fn(16, 16, |x, _| (x * 10).min(255) as u8);
        let g = scharr_gradients(&img);
        for y in 2..14 {
            for x in 2..14 {
                if (x * 10) < 245 && ((x + 1) * 10) < 245 {
                    assert!(
                        (g.gx(x, y) - 10.0).abs() < 1e-3,
                        "gx at ({x},{y}) = {}",
                        g.gx(x, y)
                    );
                    assert!(g.gy(x, y).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn gradient_of_vertical_ramp() {
        let img = GrayImage::from_fn(16, 16, |_, y| (y * 8) as u8);
        let g = scharr_gradients(&img);
        for y in 2..14 {
            for x in 2..14 {
                assert!((g.gy(x, y) - 8.0).abs() < 1e-3);
                assert!(g.gx(x, y).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn gradient_sampling_interpolates() {
        let img = GrayImage::from_fn(16, 16, |x, _| (x * 10).min(255) as u8);
        let g = scharr_gradients(&img);
        let v = g.sample_gx(5.5, 5.5);
        assert!((v - 10.0).abs() < 1e-3);
        // Out-of-bounds sampling clamps, never panics.
        let _ = g.sample_gx(-10.0, -10.0);
        let _ = g.sample_gy(100.0, 100.0);
    }

    #[test]
    fn dimensions_preserved() {
        let img = GrayImage::new(7, 5);
        let g = scharr_gradients(&img);
        assert_eq!((g.width(), g.height()), (7, 5));
        let b = gaussian_blur(&img);
        assert_eq!((b.width(), b.height()), (7, 5));
    }

    #[test]
    fn blur_preserves_flat_regions() {
        let img = GrayImage::from_fn(10, 10, |_, _| 128);
        let b = gaussian_blur(&img);
        for y in 0..10 {
            for x in 0..10 {
                assert!((b.get(x, y) as i32 - 128).abs() <= 1);
            }
        }
    }

    #[test]
    fn blur_smooths_impulse() {
        let mut img = GrayImage::new(9, 9);
        img.set(4, 4, 255);
        let b = gaussian_blur(&img);
        // Impulse energy spreads: centre is reduced, neighbours nonzero.
        assert!(b.get(4, 4) < 255);
        assert!(b.get(3, 4) > 0);
        assert!(b.get(4, 3) > 0);
        // Far corner untouched.
        assert_eq!(b.get(0, 0), 0);
    }
}
