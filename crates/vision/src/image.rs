//! Grayscale raster images.
//!
//! [`GrayImage`] is the pixel container every vision kernel in this crate
//! operates on. Pixels are `u8` intensities stored row-major; sub-pixel reads
//! use bilinear interpolation ([`GrayImage::sample`]), which is what the
//! Lucas-Kanade tracker needs to follow features at fractional coordinates.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// A row-major, 8-bit grayscale image.
///
/// # Example
///
/// ```
/// use adavp_vision::image::GrayImage;
/// let img = GrayImage::from_fn(4, 4, |x, y| (x * 10 + y) as u8);
/// assert_eq!(img.get(2, 1), 21);
/// assert_eq!(img.sample(1.5, 0.0), 15.0);
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct GrayImage {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl fmt::Debug for GrayImage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GrayImage")
            .field("width", &self.width)
            .field("height", &self.height)
            .field("bytes", &self.data.len())
            .finish()
    }
}

impl GrayImage {
    /// Creates a black (all-zero) image.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows `usize`.
    // adavp-lint: allow(panic-surface, item=new) — documented constructor precondition; overflow here means a corrupt config, not a runtime fault
    pub fn new(width: u32, height: u32) -> Self {
        let len = (width as usize)
            .checked_mul(height as usize)
            .expect("image dimensions overflow");
        Self {
            width,
            height,
            data: vec![0; len],
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn<F: FnMut(u32, u32) -> u8>(width: u32, height: u32, mut f: F) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                let i = img.index(x, y);
                img.data[i] = f(x, y);
            }
        }
        img
    }

    /// Creates an image from raw row-major pixel data.
    ///
    /// Returns `None` if `data.len() != width * height`.
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Option<Self> {
        if data.len() == (width as usize) * (height as usize) {
            Some(Self {
                width,
                height,
                data,
            })
        } else {
            None
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw pixel bytes, row-major.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw pixel bytes, row-major (for slice-based kernels writing
    /// results in place without per-pixel bounds checks).
    pub fn as_mut_bytes(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// One row of pixels as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `y >= self.height()`.
    #[inline]
    pub fn row(&self, y: u32) -> &[u8] {
        let w = self.width as usize;
        let start = y as usize * w;
        &self.data[start..start + w]
    }

    /// Consumes the image and returns the raw pixel bytes.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> usize {
        y as usize * self.width as usize + x as usize
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[self.index(x, y)]
    }

    /// Pixel value at `(x, y)`, or `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, x: u32, y: u32) -> Option<u8> {
        if x < self.width && y < self.height {
            Some(self.data[self.index(x, y)])
        } else {
            None
        }
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let i = self.index(x, y);
        self.data[i] = v;
    }

    /// Pixel value with coordinates clamped to the image border
    /// (replicate-border addressing, used by convolution kernels).
    #[inline]
    // adavp-lint: allow(cast-truncation, item=get_clamped, bound=4294967295) — coordinates are clamped to [0, dim-1] and dims are u32, so the i64 value fits by construction
    pub fn get_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.data[self.index(cx, cy)]
    }

    /// Bilinearly-interpolated intensity at fractional coordinates.
    ///
    /// Coordinates outside the image are clamped to the border, so the
    /// function is total. The result is in `[0, 255]`.
    pub fn sample(&self, x: f32, y: f32) -> f32 {
        let xf = x.floor();
        let yf = y.floor();
        let tx = x - xf;
        let ty = y - yf;
        let x0 = xf as i64;
        let y0 = yf as i64;
        let p00 = self.get_clamped(x0, y0) as f32;
        let p10 = self.get_clamped(x0 + 1, y0) as f32;
        let p01 = self.get_clamped(x0, y0 + 1) as f32;
        let p11 = self.get_clamped(x0 + 1, y0 + 1) as f32;
        let top = p00 + (p10 - p00) * tx;
        let bottom = p01 + (p11 - p01) * tx;
        top + (bottom - top) * ty
    }

    /// Bilinearly-interpolated intensity, optimized for coordinates whose
    /// 2x2 neighborhood lies fully inside the image (single bounds test,
    /// direct indexing); falls back to [`GrayImage::sample`] at borders.
    ///
    /// Returns **bit-identical** values to `sample` for every input — the
    /// interpolation arithmetic is the same, only the addressing differs.
    #[inline]
    pub fn sample_fast(&self, x: f32, y: f32) -> f32 {
        let xf = x.floor();
        let yf = y.floor();
        let x0 = xf as i64;
        let y0 = yf as i64;
        if x0 >= 0 && y0 >= 0 && x0 + 1 < self.width as i64 && y0 + 1 < self.height as i64 {
            let tx = x - xf;
            let ty = y - yf;
            let w = self.width as usize;
            let i = y0 as usize * w + x0 as usize;
            let p00 = self.data[i] as f32;
            let p10 = self.data[i + 1] as f32;
            let p01 = self.data[i + w] as f32;
            let p11 = self.data[i + w + 1] as f32;
            let top = p00 + (p10 - p00) * tx;
            let bottom = p01 + (p11 - p01) * tx;
            top + (bottom - top) * ty
        } else {
            self.sample(x, y)
        }
    }

    /// Whether `(x, y)` lies at least `margin` pixels inside the image.
    pub fn in_bounds_with_margin(&self, x: f32, y: f32, margin: f32) -> bool {
        x >= margin
            && y >= margin
            && x < self.width as f32 - margin
            && y < self.height as f32 - margin
    }

    /// Half-resolution downsample with a 2x2 box filter (pyramid level step).
    ///
    /// Odd trailing rows/columns are dropped, matching the convention of
    /// OpenCV's `pyrDown` sizing (`floor(n/2)` but never below 1).
    pub fn downsample(&self) -> GrayImage {
        let mut out = GrayImage::new((self.width / 2).max(1), (self.height / 2).max(1));
        self.downsample_into(&mut out);
        out
    }

    /// [`downsample`](Self::downsample) into a caller-provided image of the
    /// correct size (`(width/2).max(1) x (height/2).max(1)`), avoiding the
    /// output allocation. Row-slice fast path: no per-pixel bounds checks.
    /// With the `fixed-point` feature (default) interior rows run through
    /// the vectorized `u16` [`crate::simd::box2_row`] helper; the retained
    /// [`downsample_into_scalar`](Self::downsample_into_scalar) `u32` path
    /// produces identical bytes (the 2x2 sum maxes at `4 * 255 = 1020`).
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong dimensions.
    // adavp-lint: allow(cast-truncation, item=downsample_into, bound=255) — four u8 pixels widen to u32 (sum <= 1020); sum/4 <= 255 fits the u8 store
    pub fn downsample_into(&self, out: &mut GrayImage) {
        let nw = (self.width / 2).max(1);
        let nh = (self.height / 2).max(1);
        assert!(
            out.width == nw && out.height == nh,
            "downsample output must be {nw}x{nh}"
        );
        crate::perf::record(|c| c.downsamples += 1);
        if self.width >= 2 && self.height >= 2 {
            // Interior fast path: source indices 2x, 2x+1, 2y, 2y+1 are
            // always in bounds, so work on raw row slices.
            let w = self.width as usize;
            #[cfg(feature = "fixed-point")]
            crate::perf::record(|c| c.fixed_point_rows += nh as u64);
            for y in 0..nh as usize {
                let r0 = &self.data[2 * y * w..2 * y * w + w];
                let r1 = &self.data[(2 * y + 1) * w..(2 * y + 1) * w + w];
                let dst = &mut out.data[y * nw as usize..(y + 1) * nw as usize];
                #[cfg(feature = "fixed-point")]
                crate::simd::box2_row(r0, r1, dst);
                #[cfg(not(feature = "fixed-point"))]
                for (x, d) in dst.iter_mut().enumerate() {
                    let sum = r0[2 * x] as u32
                        + r0[2 * x + 1] as u32
                        + r1[2 * x] as u32
                        + r1[2 * x + 1] as u32;
                    *d = (sum / 4) as u8;
                }
            }
        } else {
            // Degenerate 1-pixel-wide/tall images: replicate-border path.
            for y in 0..nh {
                for x in 0..nw {
                    let sx = (x * 2).min(self.width - 1);
                    let sy = (y * 2).min(self.height - 1);
                    let sx1 = (sx + 1).min(self.width - 1);
                    let sy1 = (sy + 1).min(self.height - 1);
                    let sum = self.get(sx, sy) as u32
                        + self.get(sx1, sy) as u32
                        + self.get(sx, sy1) as u32
                        + self.get(sx1, sy1) as u32;
                    out.set(x, y, (sum / 4) as u8);
                }
            }
        }
    }

    /// The pre-vectorization [`downsample_into`](Self::downsample_into)
    /// with per-pixel `u32` arithmetic. Retained verbatim as the scalar
    /// baseline for parity tests and the `downsample_scalar_256` bench
    /// entry; produces identical bytes.
    ///
    /// # Panics
    ///
    /// Panics if `out` has the wrong dimensions.
    // adavp-lint: allow(cast-truncation, item=downsample_into_scalar, bound=255) — four u8 pixels widen to u32 (sum <= 1020); sum/4 <= 255 fits the u8 store
    pub fn downsample_into_scalar(&self, out: &mut GrayImage) {
        let nw = (self.width / 2).max(1);
        let nh = (self.height / 2).max(1);
        assert!(
            out.width == nw && out.height == nh,
            "downsample output must be {nw}x{nh}"
        );
        crate::perf::record(|c| c.downsamples += 1);
        if self.width >= 2 && self.height >= 2 {
            let w = self.width as usize;
            for y in 0..nh as usize {
                let r0 = &self.data[2 * y * w..2 * y * w + w];
                let r1 = &self.data[(2 * y + 1) * w..(2 * y + 1) * w + w];
                let dst = &mut out.data[y * nw as usize..(y + 1) * nw as usize];
                for (x, d) in dst.iter_mut().enumerate() {
                    let sum = r0[2 * x] as u32
                        + r0[2 * x + 1] as u32
                        + r1[2 * x] as u32
                        + r1[2 * x + 1] as u32;
                    *d = (sum / 4) as u8;
                }
            }
        } else {
            for y in 0..nh {
                for x in 0..nw {
                    let sx = (x * 2).min(self.width - 1);
                    let sy = (y * 2).min(self.height - 1);
                    let sx1 = (sx + 1).min(self.width - 1);
                    let sy1 = (sy + 1).min(self.height - 1);
                    let sum = self.get(sx, sy) as u32
                        + self.get(sx1, sy) as u32
                        + self.get(sx, sy1) as u32
                        + self.get(sx1, sy1) as u32;
                    out.set(x, y, (sum / 4) as u8);
                }
            }
        }
    }

    /// Mean intensity of the image, in `[0, 255]`.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.data.iter().map(|&v| v as u64).sum();
        sum as f32 / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = GrayImage::new(3, 2);
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert!(img.as_bytes().iter().all(|&v| v == 0));
    }

    #[test]
    fn from_fn_and_get_set() {
        let mut img = GrayImage::from_fn(4, 3, |x, y| (x + 10 * y) as u8);
        assert_eq!(img.get(3, 2), 23);
        img.set(3, 2, 99);
        assert_eq!(img.get(3, 2), 99);
        assert_eq!(img.try_get(4, 0), None);
        assert_eq!(img.try_get(0, 3), None);
        assert_eq!(img.try_get(1, 1), Some(11));
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(GrayImage::from_raw(2, 2, vec![0; 4]).is_some());
        assert!(GrayImage::from_raw(2, 2, vec![0; 5]).is_none());
        let img = GrayImage::from_raw(2, 1, vec![7, 8]).unwrap();
        assert_eq!(img.into_raw(), vec![7, 8]);
    }

    #[test]
    #[should_panic(expected = "pixel out of bounds")]
    fn get_out_of_bounds_panics() {
        GrayImage::new(2, 2).get(2, 0);
    }

    #[test]
    fn clamped_addressing() {
        let img = GrayImage::from_fn(3, 3, |x, y| (x + 3 * y) as u8);
        assert_eq!(img.get_clamped(-5, -5), img.get(0, 0));
        assert_eq!(img.get_clamped(10, 10), img.get(2, 2));
        assert_eq!(img.get_clamped(1, -1), img.get(1, 0));
    }

    #[test]
    fn bilinear_sampling() {
        let img = GrayImage::from_fn(2, 2, |x, y| match (x, y) {
            (0, 0) => 0,
            (1, 0) => 100,
            (0, 1) => 200,
            _ => 100,
        });
        assert_eq!(img.sample(0.0, 0.0), 0.0);
        assert_eq!(img.sample(0.5, 0.0), 50.0);
        assert_eq!(img.sample(0.0, 0.5), 100.0);
        // Centre: mean of all four corners.
        assert_eq!(img.sample(0.5, 0.5), 100.0);
        // Outside coordinates clamp.
        assert_eq!(img.sample(-3.0, -3.0), 0.0);
    }

    #[test]
    fn margin_check() {
        let img = GrayImage::new(10, 10);
        assert!(img.in_bounds_with_margin(5.0, 5.0, 2.0));
        assert!(!img.in_bounds_with_margin(1.0, 5.0, 2.0));
        assert!(!img.in_bounds_with_margin(5.0, 8.5, 2.0));
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = GrayImage::from_fn(8, 6, |_, _| 100);
        let d = img.downsample();
        assert_eq!((d.width(), d.height()), (4, 3));
        assert!(d.as_bytes().iter().all(|&v| v == 100));

        // 1x1 stays 1x1.
        let tiny = GrayImage::new(1, 1).downsample();
        assert_eq!((tiny.width(), tiny.height()), (1, 1));
    }

    #[test]
    fn downsample_averages() {
        let img = GrayImage::from_fn(2, 2, |x, y| ((x + y * 2) * 40) as u8);
        let d = img.downsample();
        assert_eq!(d.get(0, 0), ((40 + 80 + 120) / 4) as u8);
    }

    #[test]
    fn downsample_matches_scalar_baseline_bytes() {
        for (w, h) in [(8u32, 6u32), (9, 7), (2, 2), (1, 5), (5, 1), (33, 17)] {
            let img = GrayImage::from_fn(w, h, |x, y| {
                (x.wrapping_mul(67) ^ y.wrapping_mul(29)).wrapping_add(x) as u8
            });
            let fast = img.downsample();
            let mut scalar = GrayImage::new((w / 2).max(1), (h / 2).max(1));
            img.downsample_into_scalar(&mut scalar);
            assert_eq!(fast, scalar, "downsample bytes diverged at {w}x{h}");
        }
        // Saturating content survives the u16 accumulator.
        let max = GrayImage::from_fn(6, 6, |_, _| 255);
        assert!(max.downsample().as_bytes().iter().all(|&v| v == 255));
    }

    #[test]
    fn mean_intensity() {
        let img = GrayImage::from_fn(2, 2, |x, _| if x == 0 { 0 } else { 100 });
        assert_eq!(img.mean(), 50.0);
    }
}
