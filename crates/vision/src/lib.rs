//! Classic computer-vision kernels used by the AdaVP object tracker.
//!
//! This crate is a from-scratch implementation of the two algorithms the
//! AdaVP paper (ICDCS 2020) relies on for its lightweight object tracker:
//!
//! * **Shi-Tomasi "good features to track"** ([`features::good_features_to_track`]) —
//!   minimum-eigenvalue corner response with non-maximum suppression and an
//!   optional region mask, mirroring OpenCV's `goodFeaturesToTrack`.
//! * **Pyramidal Lucas-Kanade optical flow** ([`flow::PyramidalLk`]) —
//!   iterative LK refined coarse-to-fine over a Gaussian image pyramid,
//!   mirroring OpenCV's `calcOpticalFlowPyrLK`.
//!
//! Supporting modules provide grayscale images ([`image::GrayImage`]),
//! spatial-gradient and blur kernels ([`gradient`]), Gaussian pyramids
//! ([`pyramid`]) and rectangle geometry ([`geometry`]).
//!
//! # Hot-path design
//!
//! The kernels are written for a per-frame tracking loop:
//!
//! * every kernel has an `*_into` variant writing into caller-provided
//!   buffers recycled through a [`scratch::ScratchPool`], so steady-state
//!   frame processing performs no heap allocations;
//! * each [`pyramid::Pyramid`] caches its per-level Scharr gradients
//!   ([`pyramid::Pyramid::gradients`]), computed at most once and shared by
//!   corner detection and every Lucas-Kanade call that uses the pyramid as
//!   its reference;
//! * with the `parallel` feature (on by default) Lucas-Kanade point sets
//!   and corner response scans fan out across threads with **bit-identical**
//!   results to the sequential path (see [`parallel`]);
//! * the [`exec::Executor`] work queue runs whole offline work lists (clip
//!   renders, training runs, dataset sweeps) over a jobs-bounded pool with
//!   index-ordered, bit-identical results;
//! * the [`perf`] module counts kernel invocations, LK iterations, buffer
//!   reuse, and per-kernel wall time on thread-local counters, so the
//!   pipeline can report exactly how much work each frame cost.
//!
//! # Feature flags
//!
//! * `parallel` *(default)* — multi-threaded LK tracking and corner scans
//!   via scoped threads (no extra dependencies).
//! * `serde` *(default)* — `Serialize`/`Deserialize` on [`image::GrayImage`].
//! * `simd` *(default)* — chunked, autovectorization-friendly loop shapes
//!   in the [`simd`] row helpers; bit-identical to the plain loops.
//! * `fixed-point` *(default)* — u8/u16 integer arithmetic for blur and
//!   downsampling instead of the retained `*_scalar` wide-integer paths;
//!   proven exact, so output bytes are identical either way.
//!
//! All four features are *compile-time* switches: there is no runtime CPU
//! probing anywhere (enforced by the `cpu-probe` adavp-lint rule), and
//! every feature combination produces bit-identical results.
//!
//! # Example
//!
//! ```
//! use adavp_vision::image::GrayImage;
//! use adavp_vision::features::{good_features_to_track, GoodFeaturesParams};
//! use adavp_vision::flow::{PyramidalLk, LkParams};
//! use adavp_vision::geometry::Point2;
//!
//! // A synthetic textured image and a copy shifted right by 2 pixels.
//! let img = GrayImage::from_fn(96, 96, |x, y| {
//!     (((x / 8 + y / 8) % 2) as u8) * 180 + ((x * 7 + y * 13) % 31) as u8
//! });
//! let shifted = GrayImage::from_fn(96, 96, |x, y| {
//!     let sx = x.saturating_sub(2);
//!     img.get(sx, y)
//! });
//!
//! let corners = good_features_to_track(&img, &GoodFeaturesParams::default(), None);
//! assert!(!corners.is_empty());
//!
//! let lk = PyramidalLk::new(LkParams::default());
//! let pts: Vec<Point2> = corners.iter().map(|c| c.point).collect();
//! let tracked = lk.track(&img, &shifted, &pts);
//! let ok = tracked.iter().filter(|t| t.found).count();
//! assert!(ok > 0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod exec;
pub mod fast;
pub mod features;
pub mod flow;
pub mod geometry;
pub mod gradient;
pub mod image;
pub mod parallel;
pub mod perf;
pub mod pyramid;
pub mod scratch;
pub mod simd;

pub use exec::Executor;
pub use fast::{fast_corners, FastParams};
pub use features::{
    good_features_from_gradients, good_features_to_track, Corner, GoodFeaturesParams,
};
pub use flow::{FlowResult, LkParams, LkParamsError, PyramidalLk};
pub use geometry::{BoundingBox, Point2, Vec2};
pub use image::GrayImage;
pub use perf::KernelCounters;
pub use pyramid::Pyramid;
pub use scratch::ScratchPool;
