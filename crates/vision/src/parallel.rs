//! Deterministic data-parallel fan-out for the vision kernels.
//!
//! Built on `std::thread::scope` rather than an external thread pool: the
//! build environment for this repo is fully offline, so the crate cannot
//! take a `rayon` dependency. The helper below provides the same
//! "parallel map over an index range" shape with three guarantees:
//!
//! 1. **Bit-identical results.** Work items are pure functions of their
//!    index; results are collected in index order, so output is exactly
//!    what the sequential loop produces (verified by the LK parity tests).
//! 2. **Counter transparency.** Worker threads start with fresh
//!    thread-local [`crate::perf`] counters; after the join, each worker's
//!    counters are merged into the calling thread, so observability behaves
//!    as if the work ran sequentially.
//! 3. **Graceful degradation.** With one band (or one available core by
//!    default) the fan-out short-circuits to a plain loop on the calling
//!    thread — no spawn cost, no behavioural difference.
//!
//! Swapping in rayon later is a one-function change: replace the body of
//! [`map_bands`] with `par_iter` over the band ranges.

use crate::perf;

/// Number of worker threads the automatic parallel paths target
/// (`std::thread::available_parallelism`, 1 when unknown).
pub fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of bands a row-scan of `rows` rows should fan out over: the
/// available core count when the `parallel` feature is on and the scan is
/// large enough to amortize spawning, otherwise 1 (inline).
pub(crate) fn scan_bands(rows: usize) -> usize {
    #[cfg(feature = "parallel")]
    {
        if rows >= 32 {
            return max_threads();
        }
    }
    let _ = rows;
    1
}

/// Splits `0..len` into at most `bands` contiguous ranges of near-equal
/// size (empty ranges are never produced). Public so other crates (e.g. the
/// rasterizer's row-band fan-out) can reuse the same banding scheme.
pub fn band_ranges(len: usize, bands: usize) -> Vec<(usize, usize)> {
    let bands = bands.clamp(1, len.max(1));
    let base = len / bands;
    let extra = len % bands;
    let mut out = Vec::with_capacity(bands);
    let mut start = 0usize;
    for b in 0..bands {
        let size = base + usize::from(b < extra);
        if size == 0 {
            break;
        }
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Applies `f` to each band of `0..len` (at most `bands` bands) and returns
/// the per-band results in band order.
///
/// `f` receives the half-open index range `(start, end)` of its band. With
/// a single band the call runs inline on the current thread.
pub(crate) fn map_bands<R, F>(len: usize, bands: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let ranges = band_ranges(len, bands);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(|(s, e)| f(s, e)).collect();
    }
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    let mut worker_counters: Vec<perf::KernelCounters> = Vec::new();
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(ranges.len() - 1);
        // Bands 1.. on worker threads, band 0 on the calling thread.
        for &(s, e) in &ranges[1..] {
            handles.push(scope.spawn(move || {
                let r = f(s, e);
                (r, perf::snapshot())
            }));
        }
        let (s0, e0) = ranges[0];
        results[0] = Some(f(s0, e0));
        for (i, h) in handles.into_iter().enumerate() {
            let (r, counters) = h.join().expect("vision worker thread panicked");
            results[i + 1] = Some(r);
            worker_counters.push(counters);
        }
    });
    for c in &worker_counters {
        perf::merge(c);
    }
    results
        .into_iter()
        .map(|r| r.expect("every band produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parallel map over a slice via [`map_bands`], mirroring how the flow
    /// and corner kernels consume it.
    fn map_items<T: Sync, R: Send>(
        items: &[T],
        bands: usize,
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R> {
        let per_band = map_bands(items.len(), bands, |s, e| {
            items[s..e]
                .iter()
                .enumerate()
                .map(|(off, it)| f(s + off, it))
                .collect::<Vec<R>>()
        });
        per_band.into_iter().flatten().collect()
    }

    #[test]
    fn band_ranges_cover_without_overlap() {
        for len in [0usize, 1, 2, 5, 16, 97] {
            for bands in [1usize, 2, 3, 7, 200] {
                let r = band_ranges(len, bands);
                let mut cursor = 0;
                for &(s, e) in &r {
                    assert_eq!(s, cursor, "len={len} bands={bands}");
                    assert!(e > s, "empty band for len={len} bands={bands}");
                    cursor = e;
                }
                assert_eq!(cursor, len, "len={len} bands={bands}");
                assert!(r.len() <= bands.max(1));
            }
        }
    }

    #[test]
    fn map_items_matches_sequential() {
        let items: Vec<u64> = (0..103).collect();
        let seq: Vec<u64> = items.iter().map(|&v| v * v + 1).collect();
        for bands in [1, 2, 3, 8] {
            let par = map_items(&items, bands, |_, &v| v * v + 1);
            assert_eq!(par, seq, "bands={bands}");
        }
    }

    #[test]
    fn worker_counters_merge_into_caller() {
        perf::reset();
        let items = [1u32; 12];
        let _ = map_items(&items, 4, |_, _| {
            perf::record(|c| c.lk_iterations += 1);
        });
        assert_eq!(
            perf::snapshot().lk_iterations,
            12,
            "all worker increments must merge back"
        );
    }

    #[test]
    fn single_band_runs_inline() {
        let items = [7u8, 8, 9];
        let out = map_items(&items, 1, |i, &v| (i, v));
        assert_eq!(out, vec![(0, 7), (1, 8), (2, 9)]);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
