//! Lightweight per-kernel performance counters.
//!
//! Every hot kernel in this crate (pyramid construction, Gaussian blur,
//! downsampling, Scharr gradients, corner scans, Lucas-Kanade) bumps a
//! thread-local counter and accumulates its wall-clock time here. The
//! counters give higher layers (the tracker's `StepStats`, the bench
//! harness) a per-kernel cost breakdown without any external profiler, and
//! let tests assert structural properties such as "exactly one pyramid
//! build per new frame".
//!
//! Counters are **thread-local** so concurrent trackers (or concurrent
//! tests) never observe each other's work. The crate's own parallel fan-out
//! ([`crate::parallel`]) merges worker-thread counters back into the
//! calling thread, so from the caller's perspective the numbers behave as
//! if the work had run sequentially.
//!
//! # Example
//!
//! ```
//! use adavp_vision::{perf, image::GrayImage, pyramid::Pyramid};
//! let before = perf::snapshot();
//! let _pyr = Pyramid::build(&GrayImage::new(64, 64), 3);
//! let work = perf::snapshot().since(&before);
//! assert_eq!(work.pyramid_builds, 1);
//! assert_eq!(work.gaussian_blurs, 2); // one blur per derived level
//! ```

use std::cell::Cell;
use std::time::Instant;

/// Cumulative per-kernel work counters for the current thread.
///
/// Obtain with [`snapshot`]; subtract two snapshots with
/// [`KernelCounters::since`] to get the work done in between.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounters {
    /// Full pyramid constructions ([`crate::pyramid::Pyramid::build`]).
    pub pyramid_builds: u64,
    /// Gaussian blur passes (one per derived pyramid level).
    pub gaussian_blurs: u64,
    /// 2x2 box downsample passes.
    pub downsamples: u64,
    /// Scharr gradient fields computed.
    pub gradient_fields: u64,
    /// Corner-response scans (Shi-Tomasi or FAST score maps).
    pub corner_scans: u64,
    /// Calls into pyramidal Lucas-Kanade (one per tracked frame pair).
    pub lk_calls: u64,
    /// Points given to Lucas-Kanade.
    pub lk_points: u64,
    /// Newton iterations executed inside Lucas-Kanade.
    pub lk_iterations: u64,
    /// Pixel/gradient buffers freshly allocated from the heap.
    pub buffers_allocated: u64,
    /// Pixel/gradient buffers recycled from a [`crate::scratch::ScratchPool`].
    pub buffers_reused: u64,
    /// Image rows processed by the fixed-point (`u8`/`u16`/`i16`) kernel
    /// variants (blur, box downsample, raw Scharr).
    pub fixed_point_rows: u64,
    /// Nanoseconds spent building pyramids (blur + downsample included).
    pub pyramid_ns: u64,
    /// Nanoseconds spent computing gradient fields.
    pub gradient_ns: u64,
    /// Nanoseconds spent in Lucas-Kanade tracking.
    pub flow_ns: u64,
    /// Nanoseconds spent in corner detection.
    pub corner_ns: u64,
}

macro_rules! for_each_field {
    ($macro_body:ident, $a:expr, $b:expr) => {{
        $macro_body!(pyramid_builds, $a, $b);
        $macro_body!(gaussian_blurs, $a, $b);
        $macro_body!(downsamples, $a, $b);
        $macro_body!(gradient_fields, $a, $b);
        $macro_body!(corner_scans, $a, $b);
        $macro_body!(lk_calls, $a, $b);
        $macro_body!(lk_points, $a, $b);
        $macro_body!(lk_iterations, $a, $b);
        $macro_body!(buffers_allocated, $a, $b);
        $macro_body!(buffers_reused, $a, $b);
        $macro_body!(fixed_point_rows, $a, $b);
        $macro_body!(pyramid_ns, $a, $b);
        $macro_body!(gradient_ns, $a, $b);
        $macro_body!(flow_ns, $a, $b);
        $macro_body!(corner_ns, $a, $b);
    }};
}

impl KernelCounters {
    /// The work done since an `earlier` snapshot (field-wise saturating
    /// subtraction, so a [`reset`] between the snapshots yields zeros
    /// rather than wrap-around garbage).
    pub fn since(&self, earlier: &KernelCounters) -> KernelCounters {
        let mut out = KernelCounters::default();
        macro_rules! sub {
            ($f:ident, $o:expr, $p:expr) => {
                $o.$f = self.$f.saturating_sub($p.$f);
            };
        }
        for_each_field!(sub, out, earlier);
        out
    }

    /// Adds `other` into `self` field-wise (used when merging worker-thread
    /// counters back into the spawning thread).
    ///
    /// **Overflow invariant:** all counter arithmetic saturates —
    /// [`since`](Self::since) saturates down and `merge` saturates up — so
    /// a counter can pin at a bound but never wraps. Downstream consumers
    /// (telemetry span attributes, parity tests) may therefore treat every
    /// field as monotone under merge without overflow checks of their own.
    pub fn merge(&mut self, other: &KernelCounters) {
        macro_rules! add {
            ($f:ident, $s:expr, $o:expr) => {
                $s.$f = $s.$f.saturating_add($o.$f);
            };
        }
        for_each_field!(add, self, other);
    }

    /// The deterministic subset of the counters: work counts only, with
    /// every wall-clock `*_ns` field stripped. See [`KernelCounts`].
    pub fn counts(&self) -> KernelCounts {
        KernelCounts {
            pyramid_builds: self.pyramid_builds,
            gaussian_blurs: self.gaussian_blurs,
            downsamples: self.downsamples,
            gradient_fields: self.gradient_fields,
            corner_scans: self.corner_scans,
            lk_calls: self.lk_calls,
            lk_points: self.lk_points,
            lk_iterations: self.lk_iterations,
            buffers_allocated: self.buffers_allocated,
            buffers_reused: self.buffers_reused,
            fixed_point_rows: self.fixed_point_rows,
        }
    }
}

/// The deterministic, count-only view of [`KernelCounters`].
///
/// The full struct mixes structural work counts (deterministic for a given
/// input, identical across runs and thread counts) with wall-clock `*_ns`
/// timings (inherently noisy). Parity tests and the telemetry layer must
/// assert on — and record — *only* the former; this sub-struct makes the
/// split explicit. Obtain via [`KernelCounters::counts`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelCounts {
    /// Full pyramid constructions.
    pub pyramid_builds: u64,
    /// Gaussian blur passes.
    pub gaussian_blurs: u64,
    /// 2x2 box downsample passes.
    pub downsamples: u64,
    /// Scharr gradient fields computed.
    pub gradient_fields: u64,
    /// Corner-response scans.
    pub corner_scans: u64,
    /// Calls into pyramidal Lucas-Kanade.
    pub lk_calls: u64,
    /// Points given to Lucas-Kanade.
    pub lk_points: u64,
    /// Newton iterations executed inside Lucas-Kanade.
    pub lk_iterations: u64,
    /// Pixel/gradient buffers freshly allocated from the heap.
    pub buffers_allocated: u64,
    /// Pixel/gradient buffers recycled from a [`crate::scratch::ScratchPool`].
    pub buffers_reused: u64,
    /// Image rows processed by the fixed-point kernel variants. Structural:
    /// for a given input and feature set this is identical across runs and
    /// thread counts (zero with the `fixed-point` feature disabled).
    pub fixed_point_rows: u64,
}

impl KernelCounts {
    /// [`crate::scratch::ScratchPool`] hit rate:
    /// `buffers_reused / (buffers_allocated + buffers_reused)`.
    /// `None` when no buffer was requested at all.
    pub fn scratch_hit_rate(&self) -> Option<f64> {
        let total = self.buffers_allocated + self.buffers_reused;
        if total == 0 {
            None
        } else {
            Some(self.buffers_reused as f64 / total as f64)
        }
    }
}

thread_local! {
    static COUNTERS: Cell<KernelCounters> = const { Cell::new(KernelCounters::default_const()) };
}

impl KernelCounters {
    const fn default_const() -> Self {
        KernelCounters {
            pyramid_builds: 0,
            gaussian_blurs: 0,
            downsamples: 0,
            gradient_fields: 0,
            corner_scans: 0,
            lk_calls: 0,
            lk_points: 0,
            lk_iterations: 0,
            buffers_allocated: 0,
            buffers_reused: 0,
            fixed_point_rows: 0,
            pyramid_ns: 0,
            gradient_ns: 0,
            flow_ns: 0,
            corner_ns: 0,
        }
    }
}

/// Current thread's cumulative counters.
pub fn snapshot() -> KernelCounters {
    COUNTERS.with(|c| c.get())
}

/// Resets the current thread's counters to zero.
pub fn reset() {
    COUNTERS.with(|c| c.set(KernelCounters::default()));
}

/// Merges a worker thread's counters into the current thread.
///
/// Called by [`crate::parallel`] after joining workers; public so external
/// thread pools can preserve the "counters behave as if sequential"
/// invariant too.
pub fn merge(delta: &KernelCounters) {
    record(|c| c.merge(delta));
}

/// Applies a mutation to the current thread's counters.
pub(crate) fn record(f: impl FnOnce(&mut KernelCounters)) {
    COUNTERS.with(|cell| {
        let mut c = cell.get();
        f(&mut c);
        cell.set(c);
    });
}

/// RAII timer: adds the elapsed nanoseconds to one counter field on drop.
pub(crate) struct ScopedTimer {
    start: Instant,
    field: fn(&mut KernelCounters) -> &mut u64,
}

impl ScopedTimer {
    pub(crate) fn new(field: fn(&mut KernelCounters) -> &mut u64) -> Self {
        Self {
            // adavp-lint: allow(wallclock) — perf counters time real kernel work; counts() strips every *_ns field before any deterministic export
            start: Instant::now(),
            field,
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        let field = self.field;
        record(|c| *field(c) += ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff_and_reset() {
        reset();
        let a = snapshot();
        record(|c| {
            c.lk_points += 5;
            c.flow_ns += 100;
        });
        let d = snapshot().since(&a);
        assert_eq!(d.lk_points, 5);
        assert_eq!(d.flow_ns, 100);
        assert_eq!(d.pyramid_builds, 0);
        reset();
        assert_eq!(snapshot(), KernelCounters::default());
    }

    #[test]
    fn since_saturates_after_reset() {
        record(|c| c.lk_calls += 3);
        let a = snapshot();
        reset();
        let d = snapshot().since(&a);
        assert_eq!(d.lk_calls, 0, "saturating diff must not wrap");
    }

    #[test]
    fn merge_adds_fieldwise() {
        reset();
        let mut a = KernelCounters::default();
        a.pyramid_builds = 2;
        a.buffers_reused = 7;
        merge(&a);
        merge(&a);
        let s = snapshot();
        assert_eq!(s.pyramid_builds, 4);
        assert_eq!(s.buffers_reused, 14);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = KernelCounters::default();
        a.lk_points = u64::MAX - 1;
        let mut b = KernelCounters::default();
        b.lk_points = 5;
        a.merge(&b);
        assert_eq!(a.lk_points, u64::MAX, "merge must saturate, not wrap");
    }

    #[test]
    fn counts_strips_wall_clock_fields() {
        let mut c = KernelCounters::default();
        c.lk_calls = 3;
        c.buffers_allocated = 1;
        c.buffers_reused = 3;
        c.flow_ns = 123_456; // wall-clock noise must not survive
        let k = c.counts();
        assert_eq!(k.lk_calls, 3);
        assert_eq!(k.scratch_hit_rate(), Some(0.75));
        assert_eq!(KernelCounts::default().scratch_hit_rate(), None);
        // Two counters differing only in ns fields have equal counts.
        let mut d = c;
        d.flow_ns = 999;
        d.corner_ns = 1;
        assert_eq!(c.counts(), d.counts());
    }

    #[test]
    fn timer_accumulates_time() {
        reset();
        {
            let _t = ScopedTimer::new(|c| &mut c.corner_ns);
            std::hint::black_box(0u64);
        }
        assert!(snapshot().corner_ns > 0);
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        record(|c| c.lk_calls += 1);
        let other = std::thread::spawn(|| snapshot().lk_calls).join().unwrap();
        assert_eq!(other, 0, "fresh thread must start from zero");
        assert_eq!(snapshot().lk_calls, 1);
    }
}
