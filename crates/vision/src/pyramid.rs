//! Gaussian image pyramids for coarse-to-fine optical flow.
//!
//! A [`Pyramid`] holds the original image at level 0 and successively
//! blurred-and-halved versions at higher levels. Pyramidal Lucas-Kanade
//! ([`crate::flow::PyramidalLk`]) starts at the coarsest level, where large
//! motions shrink to sub-pixel displacements, and refines the estimate down
//! to level 0.
//!
//! Two hot-path services live here beyond plain construction:
//!
//! * **Buffer reuse** — [`Pyramid::build_with`] takes every pixel and
//!   intermediate buffer from a [`ScratchPool`], and [`Pyramid::recycle`]
//!   returns them, so a tracker that builds one pyramid per frame reaches a
//!   steady state with **zero** heap allocations (observable through
//!   [`crate::perf`]). Pooled buffers are handed back without re-zeroing
//!   (`ScratchPool::take_sized` truncates instead of memsetting), so the
//!   steady-state build does strictly less work than a fresh one — every
//!   kernel overwrites its full output.
//! * **Cached gradients** — [`Pyramid::gradients`] computes one Scharr
//!   [`GradientField`] per level, exactly once, and caches it on the
//!   pyramid. Lucas-Kanade shares the cached fields across all tracked
//!   points and across every step that uses this pyramid as its reference,
//!   instead of re-deriving gradients per call.

use crate::gradient::{gaussian_blur_into, scharr_gradients_into, GradientField};
use crate::image::GrayImage;
use crate::perf;
use crate::scratch::ScratchPool;
use std::sync::OnceLock;

/// A Gaussian image pyramid (level 0 = full resolution).
///
/// # Example
///
/// ```
/// use adavp_vision::image::GrayImage;
/// use adavp_vision::pyramid::Pyramid;
/// let img = GrayImage::new(64, 48);
/// let pyr = Pyramid::build(&img, 3);
/// assert_eq!(pyr.levels(), 3);
/// assert_eq!(pyr.level(1).width(), 32);
/// assert_eq!(pyr.level(2).width(), 16);
/// ```
#[derive(Debug)]
pub struct Pyramid {
    levels: Vec<GrayImage>,
    /// Per-level Scharr gradients, computed lazily at most once.
    grads: OnceLock<Vec<GradientField>>,
}

impl Clone for Pyramid {
    fn clone(&self) -> Self {
        Self {
            levels: self.levels.clone(),
            grads: match self.grads.get() {
                Some(g) => {
                    let cell = OnceLock::new();
                    let _ = cell.set(g.clone());
                    cell
                }
                None => OnceLock::new(),
            },
        }
    }
}

impl Pyramid {
    /// Minimum side length below which no further levels are built.
    pub const MIN_SIDE: u32 = 8;

    /// Builds a pyramid with at most `max_levels` levels (at least 1).
    ///
    /// Level construction stops early when the next level would have a side
    /// shorter than [`Pyramid::MIN_SIDE`] pixels. Allocating wrapper around
    /// [`Pyramid::build_with`]; per-frame callers should hold a
    /// [`ScratchPool`] and use `build_with` to reuse buffers.
    pub fn build(base: &GrayImage, max_levels: u32) -> Self {
        Self::build_with(base, max_levels, &mut ScratchPool::new())
    }

    /// Builds a pyramid taking every buffer (levels, blur intermediates)
    /// from `pool`. Recycle retired pyramids with [`Pyramid::recycle`] to
    /// make steady-state construction allocation-free.
    pub fn build_with(base: &GrayImage, max_levels: u32, pool: &mut ScratchPool) -> Self {
        let _timer = perf::ScopedTimer::new(|c| &mut c.pyramid_ns);
        perf::record(|c| c.pyramid_builds += 1);
        let max_levels = max_levels.max(1);
        let mut levels = Vec::with_capacity(max_levels as usize);
        levels.push(pool.take_image_copy(base));
        while (levels.len() as u32) < max_levels {
            // adavp-lint: allow(panic-surface) — levels starts with the base image pushed two lines up
            let last = levels.last().expect("pyramid has at least one level");
            let (w, h) = (last.width(), last.height());
            if w / 2 < Self::MIN_SIDE || h / 2 < Self::MIN_SIDE {
                break;
            }
            // The blurred image is only an input to the downsample; its
            // buffer goes straight back to the pool for the next level.
            let mut smooth = pool.take_image(w, h);
            gaussian_blur_into(last, &mut smooth, pool);
            let mut next = pool.take_image((w / 2).max(1), (h / 2).max(1));
            smooth.downsample_into(&mut next);
            pool.recycle_image(smooth);
            levels.push(next);
        }
        Self {
            levels,
            grads: OnceLock::new(),
        }
    }

    /// Number of levels actually built.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The image at `level` (0 = full resolution).
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels()`.
    pub fn level(&self, level: usize) -> &GrayImage {
        &self.levels[level]
    }

    /// The full-resolution base image.
    pub fn base(&self) -> &GrayImage {
        &self.levels[0]
    }

    /// Iterator over levels from coarsest to finest (the order in which
    /// pyramidal LK visits them).
    pub fn iter_coarse_to_fine(&self) -> impl Iterator<Item = (usize, &GrayImage)> {
        self.levels.iter().enumerate().rev()
    }

    /// Per-level Scharr gradient fields, computed on first use and cached.
    ///
    /// Repeated calls (and every Lucas-Kanade step sharing this pyramid as
    /// its reference) reuse the cached fields; the computation happens at
    /// most once per pyramid.
    pub fn gradients(&self) -> &[GradientField] {
        self.grads.get_or_init(|| {
            let mut pool = ScratchPool::new();
            self.compute_gradients(&mut pool)
        })
    }

    /// Like [`Pyramid::gradients`], but takes intermediate and plane
    /// buffers from `pool` when the gradients are not cached yet.
    pub fn gradients_with(&self, pool: &mut ScratchPool) -> &[GradientField] {
        if let Some(g) = self.grads.get() {
            return g;
        }
        let computed = self.compute_gradients(pool);
        // A racing initializer may win; either value is identical.
        self.grads.get_or_init(|| computed)
    }

    /// Whether the per-level gradients are already cached.
    pub fn has_gradients(&self) -> bool {
        self.grads.get().is_some()
    }

    fn compute_gradients(&self, pool: &mut ScratchPool) -> Vec<GradientField> {
        self.levels
            .iter()
            .map(|img| {
                // Seed the field with pooled planes so the resize inside
                // scharr_gradients_into grows recycled capacity, not fresh.
                let mut field =
                    GradientField::from_recycled_planes(pool.take_f32(0), pool.take_f32(0));
                scharr_gradients_into(img, &mut field, pool);
                field
            })
            .collect()
    }

    /// Consumes the pyramid, returning every level and cached gradient
    /// buffer to `pool` for reuse by future builds.
    pub fn recycle(self, pool: &mut ScratchPool) {
        for level in self.levels {
            pool.recycle_image(level);
        }
        if let Some(grads) = self.grads.into_inner() {
            for g in grads {
                let (gx, gy) = g.into_planes();
                pool.recycle_f32(gx);
                pool.recycle_f32(gy);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_levels() {
        let img = GrayImage::new(128, 128);
        let pyr = Pyramid::build(&img, 4);
        assert_eq!(pyr.levels(), 4);
        assert_eq!(pyr.level(0).width(), 128);
        assert_eq!(pyr.level(3).width(), 16);
        assert_eq!(pyr.base().width(), 128);
    }

    #[test]
    fn stops_when_too_small() {
        let img = GrayImage::new(20, 20);
        let pyr = Pyramid::build(&img, 8);
        // 20 -> 10 -> (5 < MIN_SIDE, stop): 2 levels.
        assert_eq!(pyr.levels(), 2);
    }

    #[test]
    fn at_least_one_level() {
        let img = GrayImage::new(4, 4);
        let pyr = Pyramid::build(&img, 0);
        assert_eq!(pyr.levels(), 1);
    }

    #[test]
    fn coarse_to_fine_order() {
        let img = GrayImage::new(64, 64);
        let pyr = Pyramid::build(&img, 3);
        let order: Vec<usize> = pyr.iter_coarse_to_fine().map(|(i, _)| i).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn downsampled_content_tracks_base() {
        // A bright left half stays bright-left at every level.
        let img = GrayImage::from_fn(64, 64, |x, _| if x < 32 { 200 } else { 20 });
        let pyr = Pyramid::build(&img, 3);
        for l in 0..pyr.levels() {
            let im = pyr.level(l);
            let w = im.width();
            assert!(im.get(w / 8, im.height() / 2) > im.get(w - 1 - w / 8, im.height() / 2));
        }
    }

    #[test]
    fn pooled_build_matches_plain_build() {
        let img = GrayImage::from_fn(96, 64, |x, y| {
            (x.wrapping_mul(7) ^ y.wrapping_mul(13)) as u8
        });
        let plain = Pyramid::build(&img, 4);
        let mut pool = ScratchPool::new();
        let pooled = Pyramid::build_with(&img, 4, &mut pool);
        assert_eq!(plain.levels(), pooled.levels());
        for l in 0..plain.levels() {
            assert_eq!(plain.level(l), pooled.level(l), "level {l} differs");
        }
    }

    #[test]
    fn steady_state_build_is_allocation_free() {
        let img = GrayImage::from_fn(80, 80, |x, y| (x + y) as u8);
        let mut pool = ScratchPool::new();
        let p1 = Pyramid::build_with(&img, 4, &mut pool);
        let _ = p1.gradients_with(&mut pool);
        p1.recycle(&mut pool);
        perf::reset();
        let p2 = Pyramid::build_with(&img, 4, &mut pool);
        let _ = p2.gradients_with(&mut pool);
        let work = perf::snapshot();
        assert_eq!(
            work.buffers_allocated, 0,
            "steady-state build+gradients must only reuse pooled buffers"
        );
        assert!(work.buffers_reused > 0);
        assert_eq!(work.pyramid_builds, 1);
    }

    #[test]
    fn gradients_computed_once_and_cached() {
        let img = GrayImage::from_fn(64, 64, |x, y| (x * 2 + y) as u8);
        let pyr = Pyramid::build(&img, 3);
        assert!(!pyr.has_gradients());
        perf::reset();
        let g1 = pyr.gradients();
        assert_eq!(g1.len(), pyr.levels());
        let after_first = perf::snapshot().gradient_fields;
        assert_eq!(after_first, pyr.levels() as u64);
        let _g2 = pyr.gradients();
        assert_eq!(
            perf::snapshot().gradient_fields,
            after_first,
            "second call must hit the cache"
        );
        assert!(pyr.has_gradients());
    }

    #[test]
    fn cached_gradients_match_fresh_computation() {
        use crate::gradient::scharr_gradients;
        let img = GrayImage::from_fn(48, 40, |x, y| {
            (x.wrapping_mul(31) ^ y.wrapping_mul(17)) as u8
        });
        let pyr = Pyramid::build(&img, 3);
        for (l, g) in pyr.gradients().iter().enumerate() {
            let fresh = scharr_gradients(pyr.level(l));
            for y in 0..g.height() {
                for x in 0..g.width() {
                    assert_eq!(g.gx(x, y), fresh.gx(x, y));
                    assert_eq!(g.gy(x, y), fresh.gy(x, y));
                }
            }
        }
    }

    #[test]
    fn clone_preserves_cached_gradients() {
        let img = GrayImage::from_fn(32, 32, |x, y| (x + y) as u8);
        let pyr = Pyramid::build(&img, 2);
        let _ = pyr.gradients();
        let cloned = pyr.clone();
        assert!(cloned.has_gradients());
        assert_eq!(cloned.levels(), pyr.levels());
    }
}
