//! Gaussian image pyramids for coarse-to-fine optical flow.
//!
//! A [`Pyramid`] holds the original image at level 0 and successively
//! blurred-and-halved versions at higher levels. Pyramidal Lucas-Kanade
//! ([`crate::flow::PyramidalLk`]) starts at the coarsest level, where large
//! motions shrink to sub-pixel displacements, and refines the estimate down
//! to level 0.

use crate::gradient::gaussian_blur;
use crate::image::GrayImage;

/// A Gaussian image pyramid (level 0 = full resolution).
///
/// # Example
///
/// ```
/// use adavp_vision::image::GrayImage;
/// use adavp_vision::pyramid::Pyramid;
/// let img = GrayImage::new(64, 48);
/// let pyr = Pyramid::build(&img, 3);
/// assert_eq!(pyr.levels(), 3);
/// assert_eq!(pyr.level(1).width(), 32);
/// assert_eq!(pyr.level(2).width(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Pyramid {
    levels: Vec<GrayImage>,
}

impl Pyramid {
    /// Minimum side length below which no further levels are built.
    pub const MIN_SIDE: u32 = 8;

    /// Builds a pyramid with at most `max_levels` levels (at least 1).
    ///
    /// Level construction stops early when the next level would have a side
    /// shorter than [`Pyramid::MIN_SIDE`] pixels.
    pub fn build(base: &GrayImage, max_levels: u32) -> Self {
        let max_levels = max_levels.max(1);
        let mut levels = Vec::with_capacity(max_levels as usize);
        levels.push(base.clone());
        while (levels.len() as u32) < max_levels {
            let last = levels.last().expect("pyramid has at least one level");
            if last.width() / 2 < Self::MIN_SIDE || last.height() / 2 < Self::MIN_SIDE {
                break;
            }
            let smoothed = gaussian_blur(last);
            levels.push(smoothed.downsample());
        }
        Self { levels }
    }

    /// Number of levels actually built.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The image at `level` (0 = full resolution).
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels()`.
    pub fn level(&self, level: usize) -> &GrayImage {
        &self.levels[level]
    }

    /// The full-resolution base image.
    pub fn base(&self) -> &GrayImage {
        &self.levels[0]
    }

    /// Iterator over levels from coarsest to finest (the order in which
    /// pyramidal LK visits them).
    pub fn iter_coarse_to_fine(&self) -> impl Iterator<Item = (usize, &GrayImage)> {
        self.levels.iter().enumerate().rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_levels() {
        let img = GrayImage::new(128, 128);
        let pyr = Pyramid::build(&img, 4);
        assert_eq!(pyr.levels(), 4);
        assert_eq!(pyr.level(0).width(), 128);
        assert_eq!(pyr.level(3).width(), 16);
        assert_eq!(pyr.base().width(), 128);
    }

    #[test]
    fn stops_when_too_small() {
        let img = GrayImage::new(20, 20);
        let pyr = Pyramid::build(&img, 8);
        // 20 -> 10 -> (5 < MIN_SIDE, stop): 2 levels.
        assert_eq!(pyr.levels(), 2);
    }

    #[test]
    fn at_least_one_level() {
        let img = GrayImage::new(4, 4);
        let pyr = Pyramid::build(&img, 0);
        assert_eq!(pyr.levels(), 1);
    }

    #[test]
    fn coarse_to_fine_order() {
        let img = GrayImage::new(64, 64);
        let pyr = Pyramid::build(&img, 3);
        let order: Vec<usize> = pyr.iter_coarse_to_fine().map(|(i, _)| i).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn downsampled_content_tracks_base() {
        // A bright left half stays bright-left at every level.
        let img = GrayImage::from_fn(64, 64, |x, _| if x < 32 { 200 } else { 20 });
        let pyr = Pyramid::build(&img, 3);
        for l in 0..pyr.levels() {
            let im = pyr.level(l);
            let w = im.width();
            assert!(im.get(w / 8, im.height() / 2) > im.get(w - 1 - w / 8, im.height() / 2));
        }
    }
}
