//! Reusable scratch buffers for the allocation-free kernel paths.
//!
//! The hot vision kernels (Gaussian blur, downsampling, Scharr gradients,
//! pyramid construction) all need intermediate planes. Allocating those per
//! call is pure overhead in a per-frame loop, so [`ScratchPool`] owns them
//! and hands them out for reuse: the tracker keeps one pool alive across
//! frames, and every recycled buffer is counted in
//! [`crate::perf::KernelCounters::buffers_reused`] (fresh heap allocations
//! count under `buffers_allocated`), making the allocation savings directly
//! observable.
//!
//! # Example
//!
//! ```
//! use adavp_vision::{image::GrayImage, pyramid::Pyramid, scratch::ScratchPool, perf};
//! let img = GrayImage::new(64, 64);
//! let mut pool = ScratchPool::new();
//! let p1 = Pyramid::build_with(&img, 3, &mut pool);
//! p1.recycle(&mut pool); // return the level buffers
//! let before = perf::snapshot();
//! let _p2 = Pyramid::build_with(&img, 3, &mut pool);
//! let work = perf::snapshot().since(&before);
//! assert_eq!(work.buffers_allocated, 0, "second build reuses every buffer");
//! ```

use crate::image::GrayImage;
use crate::perf;

/// A pool of reusable pixel and intermediate-plane buffers.
///
/// All `take_*` methods return buffers of exactly the requested size
/// (contents unspecified); `recycle_*` methods accept buffers back for
/// later reuse. The pool never shrinks on its own; call
/// [`ScratchPool::clear`] to drop everything.
#[derive(Debug, Default, Clone)]
pub struct ScratchPool {
    gray: Vec<Vec<u8>>,
    planes_u16: Vec<Vec<u16>>,
    planes_i16: Vec<Vec<i16>>,
    planes_f32: Vec<Vec<f32>>,
}

/// Takes the pooled buffer with the largest capacity (best reuse odds), or
/// allocates fresh. Resizes to `len` either way. A reused buffer that is
/// already long enough is *truncated*, never re-zeroed: every `take_*`
/// consumer fully overwrites its buffer, and the clear-then-resize memset
/// this replaces made pooled pyramid builds slower than fresh allocation
/// (the OS hands out calloc'd pages for free; re-zeroing reused ones is
/// pure overhead).
fn take_sized<T: Default + Clone>(pool: &mut Vec<Vec<T>>, len: usize) -> Vec<T> {
    let picked = (0..pool.len()).max_by_key(|&i| pool[i].capacity());
    match picked {
        Some(i) => {
            let mut buf = pool.swap_remove(i);
            perf::record(|c| c.buffers_reused += 1);
            if buf.len() >= len {
                buf.truncate(len);
            } else {
                buf.resize(len, T::default());
            }
            buf
        }
        None => {
            perf::record(|c| c.buffers_allocated += 1);
            vec![T::default(); len]
        }
    }
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.gray.len() + self.planes_u16.len() + self.planes_i16.len() + self.planes_f32.len()
    }

    /// Drops every parked buffer.
    pub fn clear(&mut self) {
        self.gray.clear();
        self.planes_u16.clear();
        self.planes_i16.clear();
        self.planes_f32.clear();
    }

    /// Takes a `width * height` grayscale image (contents unspecified).
    pub fn take_image(&mut self, width: u32, height: u32) -> GrayImage {
        let len = (width as usize)
            .checked_mul(height as usize)
            .expect("image dimensions overflow");
        let buf = take_sized(&mut self.gray, len);
        GrayImage::from_raw(width, height, buf).expect("buffer sized to len")
    }

    /// Takes a `width * height` image initialized as a copy of `src`.
    pub fn take_image_copy(&mut self, src: &GrayImage) -> GrayImage {
        let mut img = self.take_image(src.width(), src.height());
        img.as_mut_bytes().copy_from_slice(src.as_bytes());
        img
    }

    /// Returns an image's pixel buffer to the pool.
    pub fn recycle_image(&mut self, img: GrayImage) {
        self.gray.push(img.into_raw());
    }

    /// Takes a `len`-element `u16` plane (used by separable blur/gradients).
    pub fn take_u16(&mut self, len: usize) -> Vec<u16> {
        take_sized(&mut self.planes_u16, len)
    }

    /// Returns a `u16` plane to the pool.
    pub fn recycle_u16(&mut self, plane: Vec<u16>) {
        self.planes_u16.push(plane);
    }

    /// Takes a `len`-element `i16` plane (raw fixed-point gradients).
    pub fn take_i16(&mut self, len: usize) -> Vec<i16> {
        take_sized(&mut self.planes_i16, len)
    }

    /// Returns an `i16` plane to the pool.
    pub fn recycle_i16(&mut self, plane: Vec<i16>) {
        self.planes_i16.push(plane);
    }

    /// Takes a `len`-element `f32` plane (used by gradient fields).
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        take_sized(&mut self.planes_f32, len)
    }

    /// Returns an `f32` plane to the pool.
    pub fn recycle_f32(&mut self, plane: Vec<f32>) {
        self.planes_f32.push(plane);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pool_allocates_then_reuses() {
        perf::reset();
        let mut pool = ScratchPool::new();
        let img = pool.take_image(8, 4);
        assert_eq!((img.width(), img.height()), (8, 4));
        let s1 = perf::snapshot();
        assert_eq!(s1.buffers_allocated, 1);
        assert_eq!(s1.buffers_reused, 0);

        pool.recycle_image(img);
        assert_eq!(pool.parked(), 1);
        let img2 = pool.take_image(4, 4); // smaller: still reuses
        assert_eq!(img2.as_bytes().len(), 16);
        let s2 = perf::snapshot();
        assert_eq!(s2.buffers_allocated, 1, "no new allocation");
        assert_eq!(s2.buffers_reused, 1);
    }

    #[test]
    fn take_image_copy_copies_pixels() {
        let src = GrayImage::from_fn(5, 3, |x, y| (x + 7 * y) as u8);
        let mut pool = ScratchPool::new();
        let copy = pool.take_image_copy(&src);
        assert_eq!(copy, src);
    }

    #[test]
    fn typed_planes_round_trip() {
        let mut pool = ScratchPool::new();
        let u = pool.take_u16(10);
        assert_eq!(u.len(), 10);
        pool.recycle_u16(u);
        let f = pool.take_f32(6);
        assert_eq!(f.len(), 6);
        pool.recycle_f32(f);
        let i = pool.take_i16(4);
        assert_eq!(i.len(), 4);
        pool.recycle_i16(i);
        assert_eq!(pool.parked(), 3);
        pool.clear();
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn reuse_never_rezeroes_long_enough_buffers() {
        let mut pool = ScratchPool::new();
        pool.recycle_u16(vec![7u16; 64]);
        let buf = pool.take_u16(32);
        assert_eq!(buf.len(), 32);
        assert!(
            buf.iter().all(|&v| v == 7),
            "steady-state take must truncate, not memset"
        );
        // A too-short parked buffer still grows with default fill.
        pool.recycle_u16(vec![3u16; 8]);
        let grown = pool.take_u16(16);
        assert_eq!(grown.len(), 16);
        assert_eq!(&grown[..8], &[3u16; 8]);
        assert_eq!(&grown[8..], &[0u16; 8]);
    }

    #[test]
    fn prefers_largest_parked_buffer() {
        let mut pool = ScratchPool::new();
        pool.recycle_u16(Vec::with_capacity(4));
        pool.recycle_u16(Vec::with_capacity(100));
        let big = pool.take_u16(50);
        assert!(big.capacity() >= 100, "must pick the largest buffer");
    }
}
