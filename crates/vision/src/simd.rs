//! Portable, lane-width-agnostic SIMD-style row helpers.
//!
//! Every hot kernel in this crate (separable blur, 2x2 box downsample,
//! Scharr smoothing/differencing, the Lucas-Kanade bilinear window fills)
//! bottoms out in one of the element-wise row operations defined here. The
//! helpers are written in the one shape LLVM reliably auto-vectorizes
//! without `unsafe` or architecture intrinsics (the crate root carries
//! `#![forbid(unsafe_code)]`): every input is re-sliced to the *exact*
//! output length up front (or walked with `windows`/`chunks_exact`), so
//! the bounds checks vanish and the plain element loop compiles to full
//! vector lanes at whatever width the target ISA offers. The lane width is
//! never named in the source — the same code vectorizes to SSE2, AVX2 or
//! AVX-512 purely from the compile-time target baseline.
//!
//! # Deterministic dispatch
//!
//! Which implementation runs is decided **at compile time only**: the
//! `simd`/`fixed-point` cargo features select between these row helpers
//! and the retained scalar baselines at each call site, and the target ISA
//! baseline is pinned by the build (`.cargo/config.toml`). There is no
//! runtime CPU-feature probing (the `cpu-probe` adavp-lint rule rejects
//! `is_*_feature_detected` in every deterministic crate), so a given
//! binary always takes the same code path. Vectorization here always means
//! "across independent output elements", never "reassociate a reduction",
//! so results are **bit-identical** across feature combinations, lane
//! widths, and hosts.
//!
//! # Exactness
//!
//! * Integer helpers ([`blur5_h_row`], [`blur5_v_row`], [`box2_row`],
//!   [`smooth313_v_row`], [`smooth313_h_row`], [`diff_i16_row`]) use the
//!   narrowest lane type whose range provably holds every intermediate
//!   (`16 * 255 = 4080 < 65535` for the 5-tap and `[3 10 3]` kernels,
//!   `4 * 255 = 1020` for the box filter), so they equal the wider scalar
//!   arithmetic exactly.
//! * `f32` helpers ([`bilinear_span_u8`], [`bilinear_span_f32`],
//!   [`diff_norm_row`], [`i16_norm_row`]) replicate the per-element
//!   expression of their scalar counterparts token for token; lanes are
//!   independent pixels, so per-lane operation order is unchanged.

#[inline(always)]
fn bilinear(p00: f32, p10: f32, p01: f32, p11: f32, tx: f32, ty: f32) -> f32 {
    let top = p00 + (p10 - p00) * tx;
    let bottom = p01 + (p11 - p01) * tx;
    top + (bottom - top) * ty
}

/// Bilinear interpolation of a whole window row from two `u8` image rows.
///
/// `out[k]` interpolates between `r0[k]`, `r0[k + 1]`, `r1[k]`,
/// `r1[k + 1]` with per-lane horizontal fraction `tx[k]` and shared
/// vertical fraction `ty` — bit-identical to calling
/// [`crate::image::GrayImage::sample_fast`] per tap on the interior path.
///
/// # Panics
///
/// Panics unless `r0.len() == r1.len() == out.len() + 1` and
/// `tx.len() == out.len()`.
pub fn bilinear_span_u8(r0: &[u8], r1: &[u8], tx: &[f32], ty: f32, out: &mut [f32]) {
    let n = out.len();
    assert!(r0.len() == n + 1 && r1.len() == n + 1 && tx.len() == n);
    let (a0, a1) = (&r0[..n], &r0[1..1 + n]);
    let (b0, b1) = (&r1[..n], &r1[1..1 + n]);
    let tx = &tx[..n];
    for k in 0..n {
        out[k] = bilinear(
            a0[k] as f32,
            a1[k] as f32,
            b0[k] as f32,
            b1[k] as f32,
            tx[k],
            ty,
        );
    }
}

/// [`bilinear_span_u8`] over `f32` plane rows (gradient fields);
/// bit-identical to the interior path of
/// [`crate::gradient::GradientField::sample_gx_fast`] per tap.
///
/// # Panics
///
/// Panics unless `r0.len() == r1.len() == out.len() + 1` and
/// `tx.len() == out.len()`.
pub fn bilinear_span_f32(r0: &[f32], r1: &[f32], tx: &[f32], ty: f32, out: &mut [f32]) {
    let n = out.len();
    assert!(r0.len() == n + 1 && r1.len() == n + 1 && tx.len() == n);
    let (a0, a1) = (&r0[..n], &r0[1..1 + n]);
    let (b0, b1) = (&r1[..n], &r1[1..1 + n]);
    let tx = &tx[..n];
    for k in 0..n {
        out[k] = bilinear(a0[k], a1[k], b0[k], b1[k], tx[k], ty);
    }
}

/// If `idx` is a run of consecutive indices whose bilinear taps
/// (`idx[k]` and `idx[k] + 1`) all lie inside `0..limit`, returns the run's
/// start; otherwise `None`. Gate for the contiguous span fast paths — the
/// caller falls back to per-tap sampling (bit-identical, just slower) when
/// floating-point tap coordinates straddle a rounding edge or the border.
pub fn contiguous_start(idx: &[i64], limit: usize) -> Option<usize> {
    let &first = idx.first()?;
    if first < 0 {
        return None;
    }
    for (k, &v) in idx.iter().enumerate() {
        if v != first + k as i64 {
            return None;
        }
    }
    let last = first + idx.len() as i64 - 1;
    if (last + 1) as usize >= limit {
        return None;
    }
    Some(first as usize)
}

/// Horizontal 5-tap binomial blur (`[1 4 6 4 1] / 16`) over the row
/// interior: `dst[i]` is computed from `src[i..i + 5]` in `u16` fixed
/// point. Exact: the accumulator maxes at `16 * 255 = 4080`.
///
/// # Panics
///
/// Panics unless `src.len() == dst.len() + 4`.
// adavp-lint: allow(cast-truncation, item=blur5_h_row, bound=255) — widening u8 pixel reads; the u16 accumulator maxes at 16*255 = 4080
pub fn blur5_h_row(src: &[u8], dst: &mut [u16]) {
    let n = dst.len();
    assert!(src.len() == n + 4);
    for (d, w) in dst.iter_mut().zip(src.windows(5)) {
        let acc = w[0] as u16 + 4 * w[1] as u16 + 6 * w[2] as u16 + 4 * w[3] as u16 + w[4] as u16;
        *d = acc / 16;
    }
}

/// Vertical 5-tap binomial blur over five horizontally-blurred rows
/// (values `<= 255`, so the `u16` accumulator maxes at 4080).
///
/// # Panics
///
/// Panics unless all five rows have `dst`'s length.
// adavp-lint: allow(cast-truncation, item=blur5_v_row, bound=255) — acc <= 4080, so acc/16 <= 255 fits the u8 store exactly
pub fn blur5_v_row(r0: &[u16], r1: &[u16], r2: &[u16], r3: &[u16], r4: &[u16], dst: &mut [u8]) {
    let n = dst.len();
    assert!(
        r0.len() == n && r1.len() == n && r2.len() == n && r3.len() == n && r4.len() == n,
        "blur rows must match the output row length"
    );
    for i in 0..n {
        let acc = r0[i] + 4 * r1[i] + 6 * r2[i] + 4 * r3[i] + r4[i];
        dst[i] = (acc / 16) as u8;
    }
}

/// 2x2 box-filter decimation of two source rows into one half-width row:
/// `dst[x] = (r0[2x] + r0[2x+1] + r1[2x] + r1[2x+1]) / 4` in `u16` fixed
/// point (max sum `4 * 255 = 1020`).
///
/// # Panics
///
/// Panics unless both source rows hold at least `2 * dst.len()` pixels.
// adavp-lint: allow(cast-truncation, item=box2_row, bound=255) — sum <= 4*255 = 1020 in u16, so sum/4 <= 255 fits the u8 store
pub fn box2_row(r0: &[u8], r1: &[u8], dst: &mut [u8]) {
    let n = dst.len();
    assert!(r0.len() >= 2 * n && r1.len() >= 2 * n);
    let r0 = &r0[..2 * n];
    let r1 = &r1[..2 * n];
    for ((d, p0), p1) in dst
        .iter_mut()
        .zip(r0.chunks_exact(2))
        .zip(r1.chunks_exact(2))
    {
        let sum = p0[0] as u16 + p0[1] as u16 + p1[0] as u16 + p1[1] as u16;
        *d = (sum / 4) as u8;
    }
}

/// Vertical Scharr smoothing `3*up + 10*mid + 3*dn` into `u16`
/// (max `16 * 255 = 4080`).
///
/// # Panics
///
/// Panics unless all rows have `dst`'s length.
// adavp-lint: allow(cast-truncation, item=smooth313_v_row, bound=255) — widening u8 pixel reads; 3+10+3 taps max at 16*255 = 4080 in u16
pub fn smooth313_v_row(up: &[u8], mid: &[u8], dn: &[u8], dst: &mut [u16]) {
    let n = dst.len();
    assert!(up.len() == n && mid.len() == n && dn.len() == n);
    for x in 0..n {
        dst[x] = 3 * up[x] as u16 + 10 * mid[x] as u16 + 3 * dn[x] as u16;
    }
}

/// Horizontal Scharr smoothing over the row interior: `dst[i]` is
/// `3*mid[i] + 10*mid[i+1] + 3*mid[i+2]` in `u16` (max 4080).
///
/// # Panics
///
/// Panics unless `mid.len() == dst.len() + 2`.
// adavp-lint: allow(cast-truncation, item=smooth313_h_row, bound=255) — widening u8 pixel reads; 3+10+3 taps max at 16*255 = 4080 in u16
pub fn smooth313_h_row(mid: &[u8], dst: &mut [u16]) {
    let n = dst.len();
    assert!(mid.len() == n + 2);
    for (d, w) in dst.iter_mut().zip(mid.windows(3)) {
        *d = 3 * w[0] as u16 + 10 * w[1] as u16 + 3 * w[2] as u16;
    }
}

/// Normalized central difference of two smoothed rows:
/// `out[i] = (hi[i] - lo[i]) as f32 * norm`. The difference is an integer
/// in `[-4080, 4080]`, exactly representable in `f32`, and `norm` is a
/// power of two, so the result is exact.
///
/// # Panics
///
/// Panics unless `hi`, `lo` and `out` share a length.
// adavp-lint: allow(cast-truncation, item=diff_norm_row, bound=4080) — smoothed inputs are <= 4080, widened to i32 before the subtraction
pub fn diff_norm_row(hi: &[u16], lo: &[u16], norm: f32, out: &mut [f32]) {
    let n = out.len();
    assert!(hi.len() == n && lo.len() == n);
    let hi = &hi[..n];
    let lo = &lo[..n];
    for i in 0..n {
        out[i] = (hi[i] as i32 - lo[i] as i32) as f32 * norm;
    }
}

/// Raw fixed-point central difference: `out[i] = hi[i] - lo[i]` as `i16`
/// (range `[-4080, 4080]`, no overflow).
///
/// # Panics
///
/// Panics unless `hi`, `lo` and `out` share a length.
// adavp-lint: allow(cast-truncation, item=diff_i16_row, bound=4080) — inputs <= 4080 widen to i32; the difference lies in [-4080, 4080] and fits i16
pub fn diff_i16_row(hi: &[u16], lo: &[u16], out: &mut [i16]) {
    let n = out.len();
    assert!(hi.len() == n && lo.len() == n);
    let hi = &hi[..n];
    let lo = &lo[..n];
    for i in 0..n {
        out[i] = (hi[i] as i32 - lo[i] as i32) as i16;
    }
}

/// Exact widening of a raw `i16` fixed-point row to normalized `f32`:
/// `out[i] = src[i] as f32 * norm`. Every `i16` is exactly representable
/// in `f32` and `norm` is a power of two, so this is lossless.
///
/// # Panics
///
/// Panics unless `src.len() == out.len()`.
pub fn i16_norm_row(src: &[i16], norm: f32, out: &mut [f32]) {
    let n = out.len();
    assert!(src.len() == n);
    let src = &src[..n];
    for i in 0..n {
        out[i] = src[i] as f32 * norm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_u8(n: usize, seed: u8) -> Vec<u8> {
        (0..n)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn bilinear_span_matches_scalar_formula() {
        for n in [0usize, 1, 3, 7, 8, 9, 16, 31] {
            let r0 = pattern_u8(n + 1, 11);
            let r1 = pattern_u8(n + 1, 199);
            let tx: Vec<f32> = (0..n).map(|k| (k as f32 * 0.137) % 1.0).collect();
            let ty = 0.625;
            let mut out = vec![0.0f32; n];
            bilinear_span_u8(&r0, &r1, &tx, ty, &mut out);
            for k in 0..n {
                let expect = bilinear(
                    r0[k] as f32,
                    r0[k + 1] as f32,
                    r1[k] as f32,
                    r1[k + 1] as f32,
                    tx[k],
                    ty,
                );
                assert_eq!(out[k], expect, "lane {k} of {n}");
            }
            let f0: Vec<f32> = r0.iter().map(|&v| v as f32 * 0.25).collect();
            let f1: Vec<f32> = r1.iter().map(|&v| v as f32 * 0.25).collect();
            let mut out_f = vec![0.0f32; n];
            bilinear_span_f32(&f0, &f1, &tx, ty, &mut out_f);
            for k in 0..n {
                assert_eq!(
                    out_f[k],
                    bilinear(f0[k], f0[k + 1], f1[k], f1[k + 1], tx[k], ty)
                );
            }
        }
    }

    #[test]
    fn contiguous_start_accepts_runs_and_rejects_everything_else() {
        assert_eq!(contiguous_start(&[3, 4, 5], 7), Some(3));
        assert_eq!(contiguous_start(&[0, 1], 3), Some(0));
        // Last tap reads index 6, so limit 6 is out of bounds.
        assert_eq!(contiguous_start(&[3, 4, 5], 6), None);
        assert_eq!(contiguous_start(&[-1, 0, 1], 10), None);
        assert_eq!(contiguous_start(&[2, 4, 5], 10), None, "gap");
        assert_eq!(contiguous_start(&[], 10), None);
    }

    #[test]
    fn blur5_rows_match_u32_arithmetic() {
        for n in [1usize, 5, 8, 13, 40] {
            let src = pattern_u8(n + 4, 3);
            let mut dst = vec![0u16; n];
            blur5_h_row(&src, &mut dst);
            for i in 0..n {
                let acc: u32 = src[i] as u32
                    + 4 * src[i + 1] as u32
                    + 6 * src[i + 2] as u32
                    + 4 * src[i + 3] as u32
                    + src[i + 4] as u32;
                assert_eq!(dst[i] as u32, acc / 16);
            }
        }
        // Saturating content: every tap at 255 stays in range.
        let max = vec![255u8; 20];
        let mut dst = vec![0u16; 16];
        blur5_h_row(&max, &mut dst);
        assert!(dst.iter().all(|&v| v == 255));
        let wide = vec![4080u16; 16];
        let mut out = vec![0u8; 16];
        blur5_v_row(&wide, &wide, &wide, &wide, &wide, &mut out);
        // 16 * 4080 / 16 = 4080 -> truncates into u8 only after /16 of the
        // *horizontal* pass; rows here are raw maxima, i.e. 4080 each, and
        // the vertical accumulator would overflow u16 — which is why the
        // kernels only ever feed rows already divided by 16 (<= 255).
        // This call documents the contract with in-range rows instead:
        let rows = vec![255u16; 16];
        blur5_v_row(&rows, &rows, &rows, &rows, &rows, &mut out);
        assert!(out.iter().all(|&v| v == 255));
    }

    #[test]
    fn box2_matches_u32_arithmetic() {
        for n in [1usize, 4, 8, 9, 33] {
            let r0 = pattern_u8(2 * n + 1, 7);
            let r1 = pattern_u8(2 * n + 1, 91);
            let mut dst = vec![0u8; n];
            box2_row(&r0, &r1, &mut dst);
            for x in 0..n {
                let sum = r0[2 * x] as u32
                    + r0[2 * x + 1] as u32
                    + r1[2 * x] as u32
                    + r1[2 * x + 1] as u32;
                assert_eq!(dst[x] as u32, sum / 4);
            }
        }
        let full = vec![255u8; 8];
        let mut dst = vec![0u8; 4];
        box2_row(&full, &full, &mut dst);
        assert!(dst.iter().all(|&v| v == 255), "no saturation overflow");
    }

    #[test]
    fn scharr_rows_match_u32_arithmetic() {
        for n in [1usize, 8, 11, 64] {
            let up = pattern_u8(n, 1);
            let mid = pattern_u8(n, 2);
            let dn = pattern_u8(n, 3);
            let mut v = vec![0u16; n];
            smooth313_v_row(&up, &mid, &dn, &mut v);
            for x in 0..n {
                assert_eq!(
                    v[x] as u32,
                    3 * up[x] as u32 + 10 * mid[x] as u32 + 3 * dn[x] as u32
                );
            }
            let wide = pattern_u8(n + 2, 4);
            let mut h = vec![0u16; n];
            smooth313_h_row(&wide, &mut h);
            for i in 0..n {
                assert_eq!(
                    h[i] as u32,
                    3 * wide[i] as u32 + 10 * wide[i + 1] as u32 + 3 * wide[i + 2] as u32
                );
            }
        }
    }

    #[test]
    fn diff_rows_are_exact() {
        let hi: Vec<u16> = (0..32).map(|i| 4080 - i * 17).collect();
        let lo: Vec<u16> = (0..32).map(|i| i * 129).collect();
        let mut f = vec![0.0f32; 32];
        diff_norm_row(&hi, &lo, 1.0 / 32.0, &mut f);
        let mut raw = vec![0i16; 32];
        diff_i16_row(&hi, &lo, &mut raw);
        let mut widened = vec![0.0f32; 32];
        i16_norm_row(&raw, 1.0 / 32.0, &mut widened);
        for i in 0..32 {
            let expect = (hi[i] as i32 - lo[i] as i32) as f32 * (1.0 / 32.0);
            assert_eq!(f[i], expect);
            assert_eq!(raw[i] as i32, hi[i] as i32 - lo[i] as i32);
            assert_eq!(widened[i], expect, "i16 round trip must be lossless");
        }
    }
}
