//! Cross-path parity for pyramidal Lucas-Kanade: the optimized sequential
//! path, the band-parallel path, and the retained reference baseline must
//! produce bit-identical `FlowResult`s — the optimizations reorder work,
//! never arithmetic.

use adavp_vision::flow::{LkParams, PyramidalLk};
use adavp_vision::geometry::Point2;
use adavp_vision::image::GrayImage;
use adavp_vision::pyramid::Pyramid;
use adavp_vision::scratch::ScratchPool;

fn textured(w: u32, h: u32, phase: f32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let xf = x as f32;
        let yf = y as f32;
        let v = 128.0
            + 48.0 * (xf * 0.31 + phase).sin() * (yf * 0.23).cos()
            + 36.0 * ((xf * 0.11 + yf * 0.19 + phase).sin())
            + 18.0 * ((xf * 0.05).cos() * (yf * 0.37).sin());
        v.clamp(0.0, 255.0) as u8
    })
}

fn shifted(img: &GrayImage, dx: i64, dy: i64) -> GrayImage {
    GrayImage::from_fn(img.width(), img.height(), |x, y| {
        img.get_clamped(x as i64 - dx, y as i64 - dy)
    })
}

fn grid(w: u32, h: u32, step: u32, margin: u32) -> Vec<Point2> {
    let mut pts = Vec::new();
    let mut y = margin;
    while y < h - margin {
        let mut x = margin;
        while x < w - margin {
            pts.push(Point2::new(x as f32, y as f32));
            x += step;
        }
        y += step;
    }
    pts
}

#[test]
fn all_lk_paths_bit_identical_across_shifts() {
    let lk = PyramidalLk::new(LkParams {
        pyramid_levels: 3,
        ..LkParams::default()
    });
    let prev = textured(160, 120, 0.7);
    let prev_pyr = Pyramid::build(&prev, 3);
    // Enough points to clear the parallel-dispatch threshold.
    let pts = grid(160, 120, 8, 12);
    assert!(pts.len() >= 64);

    for (dx, dy) in [(0, 0), (2, -1), (-3, 2), (4, 4), (-1, -4)] {
        let next = shifted(&prev, dx, dy);
        let next_pyr = Pyramid::build(&next, 3);

        let baseline = lk.track_pyramids_baseline(&prev_pyr, &next_pyr, &pts);
        let sequential = lk.track_pyramids_sequential(&prev_pyr, &next_pyr, &pts);
        assert_eq!(
            baseline, sequential,
            "optimized sequential diverged from baseline at shift ({dx},{dy})"
        );

        #[cfg(feature = "parallel")]
        {
            let parallel = lk.track_pyramids_parallel(&prev_pyr, &next_pyr, &pts);
            assert_eq!(
                sequential, parallel,
                "parallel diverged from sequential at shift ({dx},{dy})"
            );
        }

        // The public dispatching entry point agrees with both.
        let auto = lk.track_pyramids(&prev_pyr, &next_pyr, &pts);
        assert_eq!(sequential, auto, "auto dispatch diverged at ({dx},{dy})");
    }
}

#[test]
fn pooled_and_plain_pyramids_track_identically() {
    let lk = PyramidalLk::new(LkParams {
        pyramid_levels: 3,
        ..LkParams::default()
    });
    let prev = textured(128, 96, 1.9);
    let next = shifted(&prev, 2, 1);
    let pts = grid(128, 96, 10, 12);

    let plain_prev = Pyramid::build(&prev, 3);
    let plain_next = Pyramid::build(&next, 3);
    let expected = lk.track_pyramids(&plain_prev, &plain_next, &pts);

    // Recycled buffers (including previously-dirtied ones) must not leak
    // into results.
    let mut pool = ScratchPool::new();
    let warm = Pyramid::build_with(&textured(128, 96, 4.2), 3, &mut pool);
    warm.gradients_with(&mut pool);
    warm.recycle(&mut pool);
    let pooled_prev = Pyramid::build_with(&prev, 3, &mut pool);
    let pooled_next = Pyramid::build_with(&next, 3, &mut pool);
    assert_eq!(
        expected,
        lk.track_pyramids(&pooled_prev, &pooled_next, &pts),
        "pooled pyramids changed LK results"
    );
}
