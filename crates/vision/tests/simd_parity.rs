//! Golden-bytes parity for the vectorized / fixed-point kernel layer.
//!
//! Mirrors `lk_parity.rs`: the feature-gated fast paths (`simd`,
//! `fixed-point`) are optimizations, not approximations, so their output must
//! match the retained scalar baselines byte-for-byte — on well-behaved frames
//! and on adversarial shapes alike. Uses no dev-dependencies so it runs under
//! the offline rustc-direct harness.

use adavp_vision::gradient::{
    gaussian_blur_into, gaussian_blur_into_scalar, scharr_gradients_i16_into,
    scharr_gradients_into, scharr_gradients_into_scalar, GradientField, GradientFieldI16,
};
use adavp_vision::image::GrayImage;
use adavp_vision::pyramid::Pyramid;
use adavp_vision::scratch::ScratchPool;

/// Deterministic texture with structure at several scales.
fn textured(w: u32, h: u32, phase: f32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let xf = x as f32;
        let yf = y as f32;
        let v = 128.0
            + 48.0 * (xf * 0.31 + phase).sin() * (yf * 0.23).cos()
            + 36.0 * ((xf * 0.11 + yf * 0.19 + phase).sin())
            + 18.0 * ((xf * 0.05).cos() * (yf * 0.37).sin());
        v.clamp(0.0, 255.0) as u8
    })
}

/// Xorshift-ish deterministic noise: hits saturating u8 values frequently.
fn noisy(w: u32, h: u32, seed: u32) -> GrayImage {
    let mut state = seed | 1;
    GrayImage::from_fn(w, h, |_, _| {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        (state >> 8) as u8
    })
}

/// Adversarial shapes: degenerate 1-pixel strips, widths straddling every
/// plausible SIMD lane count, and sizes around the pyramid's halving points.
const SHAPES: &[(u32, u32)] = &[
    (1, 1),
    (1, 7),
    (7, 1),
    (2, 2),
    (3, 3),
    (4, 4),
    (5, 3),
    (7, 5),
    (8, 8),
    (9, 2),
    (15, 15),
    (16, 16),
    (17, 17),
    (31, 9),
    (33, 11),
    (63, 5),
    (64, 64),
    (65, 33),
];

fn images_for(w: u32, h: u32) -> Vec<GrayImage> {
    vec![
        textured(w, h, 0.7),
        noisy(w, h, 0x9e37_79b9 ^ (w * 131 + h)),
        GrayImage::from_fn(w, h, |_, _| 255), // saturating: max accumulator stress
        GrayImage::from_fn(w, h, |x, y| if (x + y) % 2 == 0 { 0 } else { 255 }),
    ]
}

#[test]
fn blur_matches_scalar_bytes_on_adversarial_shapes() {
    let mut pool = ScratchPool::new();
    for &(w, h) in SHAPES {
        for img in images_for(w, h) {
            let mut fast = GrayImage::new(w, h);
            let mut scalar = GrayImage::new(w, h);
            gaussian_blur_into(&img, &mut fast, &mut pool);
            gaussian_blur_into_scalar(&img, &mut scalar, &mut pool);
            assert_eq!(
                fast.as_bytes(),
                scalar.as_bytes(),
                "blur diverged from scalar at {w}x{h}"
            );
        }
    }
}

#[test]
fn downsample_matches_scalar_bytes_on_adversarial_shapes() {
    for &(w, h) in SHAPES {
        for img in images_for(w, h) {
            let (nw, nh) = ((w / 2).max(1), (h / 2).max(1));
            let mut fast = GrayImage::new(nw, nh);
            let mut scalar = GrayImage::new(nw, nh);
            img.downsample_into(&mut fast);
            img.downsample_into_scalar(&mut scalar);
            assert_eq!(
                fast.as_bytes(),
                scalar.as_bytes(),
                "downsample diverged from scalar at {w}x{h}"
            );
        }
    }
}

#[test]
fn scharr_matches_scalar_bits_on_adversarial_shapes() {
    let mut pool = ScratchPool::new();
    for &(w, h) in SHAPES {
        for img in images_for(w, h) {
            let mut fast = GradientField::empty();
            let mut scalar = GradientField::empty();
            scharr_gradients_into(&img, &mut fast, &mut pool);
            scharr_gradients_into_scalar(&img, &mut scalar, &mut pool);
            assert_eq!(
                fast.gx_plane()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                scalar
                    .gx_plane()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "scharr gx diverged from scalar at {w}x{h}"
            );
            assert_eq!(
                fast.gy_plane()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                scalar
                    .gy_plane()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "scharr gy diverged from scalar at {w}x{h}"
            );
        }
    }
}

#[test]
fn scharr_i16_widens_to_exact_f32_gradients() {
    // The i16 fixed-point field stores un-normalized smooth differences; after
    // widening (multiply by the power-of-two 1/32) it must be bit-identical to
    // the f32 pipeline — both compute the same integer before normalizing.
    let mut pool = ScratchPool::new();
    for &(w, h) in SHAPES {
        for img in images_for(w, h) {
            let mut fixed = GradientFieldI16::empty();
            let mut widened = GradientField::empty();
            let mut scalar = GradientField::empty();
            scharr_gradients_i16_into(&img, &mut fixed, &mut pool);
            fixed.to_f32_into(&mut widened);
            scharr_gradients_into_scalar(&img, &mut scalar, &mut pool);
            assert_eq!(
                widened
                    .gx_plane()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                scalar
                    .gx_plane()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "i16 gx widening diverged at {w}x{h}"
            );
            assert_eq!(
                widened
                    .gy_plane()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                scalar
                    .gy_plane()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "i16 gy widening diverged at {w}x{h}"
            );
        }
    }
}

#[test]
fn dirtied_pool_does_not_leak_into_kernel_output() {
    // Mirror lk_parity's pooled test: warm the pool with a different frame so
    // every recycled buffer holds stale bytes, then demand byte parity with
    // fresh-buffer scalar runs. `take_sized` hands buffers back un-zeroed, so
    // this proves every kernel overwrites its full output.
    let mut pool = ScratchPool::new();
    let warm = Pyramid::build_with(&textured(96, 80, 4.2), 3, &mut pool);
    warm.gradients_with(&mut pool);
    warm.recycle(&mut pool);

    let img = noisy(77, 41, 0xdead_beef);
    let mut fast = GrayImage::new(77, 41);
    let mut fresh_pool = ScratchPool::new();
    let mut scalar = GrayImage::new(77, 41);
    gaussian_blur_into(&img, &mut fast, &mut pool);
    gaussian_blur_into_scalar(&img, &mut scalar, &mut fresh_pool);
    assert_eq!(fast.as_bytes(), scalar.as_bytes(), "blur leaked pool bytes");

    let mut fast_field = GradientField::empty();
    let mut scalar_field = GradientField::empty();
    scharr_gradients_into(&img, &mut fast_field, &mut pool);
    scharr_gradients_into_scalar(&img, &mut scalar_field, &mut fresh_pool);
    assert_eq!(
        (fast_field.gx_plane(), fast_field.gy_plane()),
        (scalar_field.gx_plane(), scalar_field.gy_plane()),
        "scharr leaked pool bytes"
    );
}
