//! Property-based tests for the vision kernels.

use adavp_vision::fast::{fast_corners, FastParams};
use adavp_vision::features::{good_features_to_track, GoodFeaturesParams};
use adavp_vision::flow::{LkParams, PyramidalLk};
use adavp_vision::geometry::Point2;
use adavp_vision::gradient::{
    gaussian_blur, gaussian_blur_into, gaussian_blur_into_scalar, scharr_gradients,
    scharr_gradients_into, scharr_gradients_into_scalar, GradientField,
};
use adavp_vision::image::GrayImage;
use adavp_vision::pyramid::Pyramid;
use adavp_vision::scratch::ScratchPool;
use proptest::prelude::*;

/// Smooth textured image parameterized by three phases — every instance is
/// LK-trackable but different.
fn textured(w: u32, h: u32, p1: f32, p2: f32, p3: f32) -> GrayImage {
    GrayImage::from_fn(w, h, |x, y| {
        let xf = x as f32;
        let yf = y as f32;
        let v = 128.0
            + 48.0 * (xf * 0.31 + p1).sin() * (yf * 0.23 + p2).cos()
            + 36.0 * ((xf * 0.11 + yf * 0.19 + p3).sin())
            + 18.0 * ((xf * 0.05).cos() * (yf * 0.37).sin());
        v.clamp(0.0, 255.0) as u8
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lk_recovers_integer_translation(
        dx in -4i64..=4,
        dy in -4i64..=4,
        p1 in 0.0f32..6.28,
        p2 in 0.0f32..6.28,
    ) {
        let prev = textured(96, 96, p1, p2, 1.0);
        let next = GrayImage::from_fn(96, 96, |x, y| {
            prev.get_clamped(x as i64 - dx, y as i64 - dy)
        });
        let lk = PyramidalLk::new(LkParams { pyramid_levels: 4, ..LkParams::default() });
        let res = lk.track(&prev, &next, &[Point2::new(48.0, 48.0)]);
        prop_assert!(res[0].found, "track lost for d=({dx},{dy})");
        let d = res[0].displacement();
        prop_assert!((d.x - dx as f32).abs() < 0.6, "dx {} vs {}", d.x, dx);
        prop_assert!((d.y - dy as f32).abs() < 0.6, "dy {} vs {}", d.y, dy);
    }

    #[test]
    fn corners_always_inside_image(
        p1 in 0.0f32..6.28,
        w in 24u32..80,
        h in 24u32..80,
    ) {
        let img = textured(w, h, p1, 2.0, 3.0);
        for c in good_features_to_track(&img, &GoodFeaturesParams::default(), None) {
            prop_assert!(c.point.x >= 0.0 && c.point.x < w as f32);
            prop_assert!(c.point.y >= 0.0 && c.point.y < h as f32);
            prop_assert!(c.response > 0.0);
        }
        for c in fast_corners(&img, &FastParams::default(), None) {
            prop_assert!(c.point.x >= 3.0 && c.point.x < w as f32 - 3.0);
            prop_assert!(c.point.y >= 3.0 && c.point.y < h as f32 - 3.0);
        }
    }

    #[test]
    fn pyramid_levels_halve_dimensions(w in 32u32..200, h in 32u32..200) {
        let img = GrayImage::new(w, h);
        let pyr = Pyramid::build(&img, 5);
        for l in 1..pyr.levels() {
            prop_assert_eq!(pyr.level(l).width(), (pyr.level(l - 1).width() / 2).max(1));
            prop_assert_eq!(pyr.level(l).height(), (pyr.level(l - 1).height() / 2).max(1));
        }
        // No level smaller than the minimum side.
        let last = pyr.level(pyr.levels() - 1);
        prop_assert!(last.width() >= Pyramid::MIN_SIDE / 2);
    }

    #[test]
    fn blur_preserves_mean_intensity(p1 in 0.0f32..6.28) {
        let img = textured(64, 64, p1, 1.0, 2.0);
        let blurred = gaussian_blur(&img);
        // Smoothing redistributes but does not create/destroy intensity
        // (up to rounding and border effects).
        prop_assert!((img.mean() - blurred.mean()).abs() < 3.0);
    }

    #[test]
    fn gradients_bounded_by_intensity_range(p1 in 0.0f32..6.28) {
        let img = textured(48, 48, p1, 0.5, 1.5);
        let g = scharr_gradients(&img);
        for y in 0..48 {
            for x in 0..48 {
                // Normalized Scharr of an 8-bit image can never exceed 255.
                prop_assert!(g.gx(x, y).abs() <= 255.0);
                prop_assert!(g.gy(x, y).abs() <= 255.0);
            }
        }
    }

    #[test]
    fn parallel_lk_bit_identical_to_sequential(
        dx in -3i64..=3,
        dy in -3i64..=3,
        p1 in 0.0f32..6.28,
        p2 in 0.0f32..6.28,
    ) {
        let prev = textured(128, 96, p1, p2, 2.0);
        let next = GrayImage::from_fn(128, 96, |x, y| {
            prev.get_clamped(x as i64 - dx, y as i64 - dy)
        });
        let lk = PyramidalLk::new(LkParams { pyramid_levels: 3, ..LkParams::default() });
        let prev_pyr = Pyramid::build(&prev, 3);
        let next_pyr = Pyramid::build(&next, 3);
        // Dense enough to clear the parallel-dispatch threshold.
        let mut pts = Vec::new();
        for gy in 0..10 {
            for gx in 0..14 {
                pts.push(Point2::new(12.0 + gx as f32 * 8.0, 12.0 + gy as f32 * 8.0));
            }
        }
        let sequential = lk.track_pyramids_sequential(&prev_pyr, &next_pyr, &pts);
        prop_assert_eq!(
            &sequential,
            &lk.track_pyramids_baseline(&prev_pyr, &next_pyr, &pts),
            "optimized path diverged from the reference baseline"
        );
        #[cfg(feature = "parallel")]
        prop_assert_eq!(
            &sequential,
            &lk.track_pyramids_parallel(&prev_pyr, &next_pyr, &pts),
            "parallel path diverged from sequential"
        );
        prop_assert_eq!(
            &sequential,
            &lk.track_pyramids(&prev_pyr, &next_pyr, &pts),
            "dispatching entry point diverged"
        );
    }

    #[test]
    fn blur_fast_path_matches_scalar_on_arbitrary_images(
        w in 1u32..70,
        h in 1u32..70,
        seed in any::<u32>(),
    ) {
        // The feature-gated fixed-point path must reproduce the scalar
        // baseline byte-for-byte on every size, including 1-pixel strips
        // and widths that are not a multiple of any SIMD lane count.
        let mut s = seed | 1;
        let img = GrayImage::from_fn(w, h, |_, _| {
            s ^= s << 13; s ^= s >> 17; s ^= s << 5;
            (s >> 8) as u8
        });
        let mut pool = ScratchPool::new();
        let mut fast = GrayImage::new(w, h);
        let mut scalar = GrayImage::new(w, h);
        gaussian_blur_into(&img, &mut fast, &mut pool);
        gaussian_blur_into_scalar(&img, &mut scalar, &mut pool);
        prop_assert_eq!(fast.as_bytes(), scalar.as_bytes());
    }

    #[test]
    fn downsample_fast_path_matches_scalar_on_arbitrary_images(
        w in 1u32..70,
        h in 1u32..70,
        seed in any::<u32>(),
    ) {
        let mut s = seed | 1;
        let img = GrayImage::from_fn(w, h, |_, _| {
            s ^= s << 13; s ^= s >> 17; s ^= s << 5;
            (s >> 8) as u8
        });
        let (nw, nh) = ((w / 2).max(1), (h / 2).max(1));
        let mut fast = GrayImage::new(nw, nh);
        let mut scalar = GrayImage::new(nw, nh);
        img.downsample_into(&mut fast);
        img.downsample_into_scalar(&mut scalar);
        prop_assert_eq!(fast.as_bytes(), scalar.as_bytes());
    }

    #[test]
    fn scharr_fast_path_bit_identical_to_scalar_on_arbitrary_images(
        w in 1u32..70,
        h in 1u32..70,
        seed in any::<u32>(),
    ) {
        let mut s = seed | 1;
        let img = GrayImage::from_fn(w, h, |_, _| {
            s ^= s << 13; s ^= s >> 17; s ^= s << 5;
            (s >> 8) as u8
        });
        let mut pool = ScratchPool::new();
        let mut fast = GradientField::empty();
        let mut scalar = GradientField::empty();
        scharr_gradients_into(&img, &mut fast, &mut pool);
        scharr_gradients_into_scalar(&img, &mut scalar, &mut pool);
        // Bit-level comparison: the fused ring pass reorders work, never
        // arithmetic, so even NaN-free float equality must be exact.
        let bits = |p: &[f32]| p.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(fast.gx_plane()), bits(scalar.gx_plane()));
        prop_assert_eq!(bits(fast.gy_plane()), bits(scalar.gy_plane()));
    }

    #[test]
    fn sample_interpolates_within_neighbours(
        x in 0.0f32..30.0,
        y in 0.0f32..30.0,
        p1 in 0.0f32..6.28,
    ) {
        let img = textured(32, 32, p1, 0.3, 0.9);
        let v = img.sample(x, y);
        let x0 = x.floor() as i64;
        let y0 = y.floor() as i64;
        let mut lo = 255u8;
        let mut hi = 0u8;
        for dy in 0..2 {
            for dx in 0..2 {
                let p = img.get_clamped(x0 + dx, y0 + dy);
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        prop_assert!(v >= lo as f32 - 1e-3 && v <= hi as f32 + 1e-3);
    }
}
