//! AR wildlife spotting: the paper's augmented-reality use case (§I) — a
//! handheld camera following animals, with labels overlaid in real time.
//!
//! Handheld footage is the adaptation module's hardest case: content-change
//! rate swings between near-still framing and fast panning. This example
//! prints AdaVP's setting decisions over time alongside the measured
//! content velocity, showing the controller in action, then demonstrates
//! the real three-thread runtime (`adavp::core::rt`) on the same clip.
//!
//! ```text
//! cargo run --release --example ar_wildlife
//! ```

use adavp::core::adaptation::AdaptationModel;
use adavp::core::eval::{evaluate_on_clip, EvalConfig};
use adavp::core::pipeline::{MpdtPipeline, PipelineConfig, SettingPolicy};
use adavp::core::rt::{run_threaded, RtConfig};
use adavp::detector::{DetectorConfig, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::scenario::Scenario;

fn main() {
    let spec = Scenario::WildAnimals.spec();
    let clip = VideoClip::generate("wildlife", &spec, 99, 240);
    println!(
        "8 seconds of handheld wildlife footage ({} frames)\n",
        clip.len()
    );

    // --- AdaVP with the adaptation controller --------------------------
    let mut adavp = MpdtPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        SettingPolicy::Adaptive(AdaptationModel::default_model()),
        PipelineConfig::default(),
    );
    let result = evaluate_on_clip(&mut adavp, &clip, &EvalConfig::default());

    println!("cycle | frame | velocity px/f | setting      | switched");
    println!("------+-------+---------------+--------------+---------");
    for cy in &result.trace.cycles {
        println!(
            "{:>5} | {:>5} | {:>13} | {:<12} | {}",
            cy.index,
            cy.detected_frame,
            cy.velocity
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".into()),
            cy.setting.to_string(),
            if cy.switched { "yes" } else { "" },
        );
    }
    println!(
        "\noverall accuracy: {:.1}% of frames with F1 >= 0.7\n",
        result.accuracy * 100.0
    );

    // --- The same design on real threads --------------------------------
    // Camera, detector and tracker threads with a shared frame buffer,
    // exactly like the paper's TX2 implementation (time-compressed 50x).
    println!("running the three-thread runtime (camera / detector / tracker)...");
    let report = run_threaded(
        &clip,
        SimulatedDetector::new(DetectorConfig::default()),
        RtConfig::default(),
        PipelineConfig::default(),
    );
    println!(
        "threads processed {} frames: {} detected, {} tracked, rest held",
        report.outputs.len(),
        report.detected_frames.len(),
        report.tracked_frames.len(),
    );
    println!(
        "detector visited frames: {:?}...",
        &report.detected_frames[..report.detected_frames.len().min(8)]
    );
}
