//! Visual inspection: run AdaVP over a clip and export annotated PGM frames
//! showing the *displayed* boxes (what the user would see on screen) next
//! to the ground truth, plus a JSON trace for plotting.
//!
//! ```text
//! cargo run --release --example inspect_frames
//! # then open /tmp/adavp-inspect/*.pgm in any image viewer
//! ```

use adavp::core::adaptation::AdaptationModel;
use adavp::core::eval::{evaluate_on_clip, EvalConfig};
use adavp::core::export::write_trace_json;
use adavp::core::pipeline::{MpdtPipeline, PipelineConfig, SettingPolicy};
use adavp::detector::{DetectorConfig, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::export::{draw_boxes, write_pgm};
use adavp::video::scenario::Scenario;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let out = PathBuf::from("/tmp/adavp-inspect");
    let clip = VideoClip::generate("inspect", &Scenario::Intersection.spec(), 5, 120);

    let mut adavp = MpdtPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        SettingPolicy::Adaptive(AdaptationModel::default_model()),
        PipelineConfig::default(),
    );
    let result = evaluate_on_clip(&mut adavp, &clip, &EvalConfig::default());

    // Every 15th frame: ground truth outlined dark, displayed boxes bright.
    let mut written = 0;
    for i in (0..clip.len()).step_by(15) {
        let frame = clip.frame(i);
        let mut boxes: Vec<_> = frame.ground_truth.iter().map(|g| (g.bbox, 0u8)).collect();
        boxes.extend(
            result.trace.outputs[i]
                .boxes
                .iter()
                .map(|l| (l.bbox, 255u8)),
        );
        let img = draw_boxes(&frame.image, &boxes);
        write_pgm(
            &img,
            &out.join(format!(
                "frame_{i:04}_{:?}_f1_{:.2}.pgm",
                result.trace.outputs[i].source, result.frame_f1[i]
            )),
        )?;
        written += 1;
    }
    write_trace_json(
        &result.trace,
        Some(&result.frame_f1),
        &out.join("trace.json"),
    )?;

    println!(
        "wrote {written} annotated frames + trace.json to {} \
         (dark outlines = ground truth, bright = displayed boxes)",
        out.display()
    );
    println!(
        "clip accuracy: {:.1}% of frames with F1 >= 0.7 over {} cycles",
        result.accuracy * 100.0,
        result.trace.cycles.len()
    );
    Ok(())
}
