//! Quickstart: generate a synthetic video, run AdaVP over it, print what
//! the system displayed for each frame and how accurate it was.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use adavp::core::adaptation::AdaptationModel;
use adavp::core::eval::{evaluate_on_clip, EvalConfig};
use adavp::core::pipeline::{FrameSource, MpdtPipeline, PipelineConfig, SettingPolicy};
use adavp::detector::{DetectorConfig, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::scenario::Scenario;

fn main() {
    // 1. A synthetic 5-second highway video (the paper evaluates on traffic
    //    footage; we render our own — see DESIGN.md for the substitution).
    let spec = Scenario::Highway.spec();
    let clip = VideoClip::generate("quickstart-highway", &spec, 42, 150);
    println!(
        "video: {} ({}x{} @ {} FPS, {} frames)",
        clip.name(),
        clip.width(),
        clip.height(),
        clip.fps(),
        clip.len()
    );

    // 2. AdaVP = the parallel detection+tracking pipeline with the
    //    velocity-threshold adaptation policy.
    let mut adavp = MpdtPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        SettingPolicy::Adaptive(AdaptationModel::default_model()),
        PipelineConfig::default(),
    );

    // 3. Run and score against the YOLOv3-704 pseudo ground truth,
    //    exactly like the paper's evaluation.
    let result = evaluate_on_clip(&mut adavp, &clip, &EvalConfig::default());

    let sources = result.trace.source_fractions();
    println!(
        "frames: {:.0}% detected, {:.0}% tracked, {:.0}% held",
        sources.detected * 100.0,
        sources.tracked * 100.0,
        sources.held * 100.0
    );
    println!("detection cycles: {}", result.trace.cycles.len());
    println!("setting switches: {}", result.trace.switch_count());
    for cy in result.trace.cycles.iter().take(6) {
        println!(
            "  cycle {}: frame {:>3} with {} ({}..{} ms, velocity {:?})",
            cy.index,
            cy.detected_frame,
            cy.setting,
            cy.start_ms as u64,
            cy.end_ms as u64,
            cy.velocity.map(|v| (v * 100.0).round() / 100.0),
        );
    }

    println!(
        "accuracy (frames with F1 >= 0.7): {:.1}%",
        result.accuracy * 100.0
    );
    println!("energy: {}", result.trace.energy);

    // 4. Peek at a few frames.
    for i in [0usize, 5, 10, 15] {
        let out = &result.trace.outputs[i];
        let src = match out.source {
            FrameSource::Detected => "detected",
            FrameSource::Tracked => "tracked",
            FrameSource::Held => "held",
            FrameSource::Dropped => "dropped",
        };
        println!(
            "frame {:>3}: {:>8}, {} boxes, F1 = {:.2}",
            i,
            src,
            out.boxes.len(),
            result.frame_f1[i]
        );
    }
}
