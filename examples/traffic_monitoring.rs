//! Traffic monitoring: the paper's motivating application (§I) — a camera
//! over a highway that must flag vehicles continuously, in real time,
//! without offloading video to the cloud.
//!
//! Compares AdaVP with the sequential MARLIN baseline and detection-only
//! processing on the same footage, then prints a per-scheme report: who
//! keeps up with the camera, who stays accurate, who burns the battery.
//!
//! ```text
//! cargo run --release --example traffic_monitoring
//! ```

use adavp::core::adaptation::AdaptationModel;
use adavp::core::eval::{evaluate_on_clip, EvalConfig};
use adavp::core::pipeline::{
    DetectorOnlyPipeline, MarlinConfig, MarlinPipeline, MpdtPipeline, PipelineConfig,
    SettingPolicy, VideoProcessor,
};
use adavp::detector::{DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::scenario::Scenario;

fn main() {
    // 10 seconds of two-way highway traffic with activity waves.
    let spec = Scenario::Highway.spec();
    let clip = VideoClip::generate("traffic", &spec, 7, 300);
    println!(
        "monitoring {} frames of highway traffic ({} objects visible in frame 0)\n",
        clip.len(),
        clip.frame(0).ground_truth.len()
    );

    let eval = EvalConfig::default();
    let det = || SimulatedDetector::new(DetectorConfig::default());

    let mut systems: Vec<Box<dyn VideoProcessor>> = vec![
        Box::new(MpdtPipeline::new(
            det(),
            SettingPolicy::Adaptive(AdaptationModel::default_model()),
            PipelineConfig::default(),
        )),
        Box::new(MpdtPipeline::new(
            det(),
            SettingPolicy::Fixed(ModelSetting::Yolo512),
            PipelineConfig::default(),
        )),
        Box::new(MarlinPipeline::new(
            det(),
            ModelSetting::Yolo512,
            PipelineConfig::default(),
            MarlinConfig::default(),
        )),
        Box::new(DetectorOnlyPipeline::new(
            det(),
            ModelSetting::Yolo512,
            PipelineConfig::default(),
        )),
    ];

    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>10} {:>12}",
        "system", "accuracy", "cycles", "held %", "energy wh", "realtime?"
    );
    for sys in &mut systems {
        let name = sys.name();
        let r = evaluate_on_clip(sys.as_mut(), &clip, &eval);
        let held = r.trace.source_fractions().held;
        let mult = r.trace.latency_multiplier(&clip);
        println!(
            "{:<22} {:>8.1}% {:>8} {:>7.0}% {:>10.4} {:>11}",
            name,
            r.accuracy * 100.0,
            r.trace.cycles.len(),
            held * 100.0,
            r.trace.energy.total_wh(),
            if mult < 1.15 { "yes" } else { "no" },
        );
    }

    println!(
        "\nAdaVP keeps detection cycles short when traffic surges and lets\n\
         them stretch when the road clears — the adaptation the paper's\n\
         Fig. 6 quantifies."
    );
}
