//! Train the DNN-model-setting adaptation module from scratch (§IV-D3) and
//! inspect what it learned.
//!
//! Reproduces the paper's offline procedure on a small synthetic corpus:
//! run MPDT at all four fixed settings over training videos, label each
//! 1-second chunk with the best setting, and fit per-setting velocity
//! thresholds. Then compares the trained model against the untrained
//! default on held-out clips.
//!
//! ```text
//! cargo run --release --example train_adaptation
//! ```

use adavp::core::adaptation::{train_adaptation_model, AdaptationModel, TrainerConfig};
use adavp::core::eval::{evaluate_on_clip, EvalConfig};
use adavp::core::pipeline::{MpdtPipeline, PipelineConfig, SettingPolicy};
use adavp::detector::{DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::scenario::Scenario;

fn main() {
    // A compact training corpus: one fast, one medium, one slow scenario.
    println!("rendering training corpus...");
    let train: Vec<VideoClip> = [
        (Scenario::Highway, 11u64),
        (Scenario::CityStreet, 12),
        (Scenario::ResidentialArea, 13),
        (Scenario::Racetrack, 14),
        (Scenario::MeetingRoom, 15),
        (Scenario::Intersection, 16),
    ]
    .iter()
    .map(|(s, seed)| VideoClip::generate(&format!("train-{s:?}"), &s.spec(), *seed, 180))
    .collect();

    println!("training thresholds (4 MPDT runs per video)...");
    let model = train_adaptation_model(&train, &TrainerConfig::default());

    println!("\nlearned velocity thresholds (px/frame):");
    println!("current setting | v1 (->608) | v2 (->512) | v3 (->416), above -> 320");
    for s in ModelSetting::ADAPTIVE {
        let [v1, v2, v3] = model.thresholds_for(s);
        println!(
            "{:<15} | {v1:>10.2} | {v2:>10.2} | {v3:>10.2}",
            s.to_string()
        );
    }

    // Held-out comparison: trained vs untrained-default model.
    println!("\nevaluating on held-out clips...");
    let held_out: Vec<VideoClip> = [
        (Scenario::CarMountedDowntown, 31u64),
        (Scenario::SkatingRink, 32),
        (Scenario::BusStation, 33),
    ]
    .iter()
    .map(|(s, seed)| VideoClip::generate(&format!("test-{s:?}"), &s.spec(), *seed, 180))
    .collect();

    let eval = EvalConfig::default();
    let accuracy_with = |m: AdaptationModel| -> f64 {
        let mut sum = 0.0;
        for clip in &held_out {
            let mut p = MpdtPipeline::new(
                SimulatedDetector::new(DetectorConfig::default()),
                SettingPolicy::Adaptive(m.clone()),
                PipelineConfig::default(),
            );
            sum += evaluate_on_clip(&mut p, clip, &eval).accuracy;
        }
        sum / held_out.len() as f64
    };

    let trained = accuracy_with(model);
    let default = accuracy_with(AdaptationModel::default_model());
    println!("AdaVP with trained model:  {:.1}%", trained * 100.0);
    println!("AdaVP with default model:  {:.1}%", default * 100.0);
}
