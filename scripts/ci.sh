#!/bin/sh
# CI gate: build, test, lint, and bench smoke runs that regenerate
# BENCH_kernels.json (which also re-asserts LK cross-path bit-parity) and
# BENCH_experiments.json (which asserts parallel-harness result parity).
#
# Usage: scripts/ci.sh [--no-bench]
set -eu
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault conformance suite (DESIGN.md §11 degradation policies)"
cargo test -q --test fault_conformance

if [ "${1:-}" != "--no-bench" ]; then
    echo "== kernel bench smoke (writes BENCH_kernels.json)"
    cargo run --release -p adavp-vision --bin kernels_bench -- BENCH_kernels.json

    echo "== parallel harness smoke (fig6 at --jobs 2)"
    cargo run --release -p adavp-bench --bin experiments -- fig6 \
        --scale smoke --jobs 2 --out target/ci-results

    echo "== harness parity bench (writes BENCH_experiments.json; exits non-zero on any jobs-1 vs jobs-N result mismatch)"
    cargo run --release -p adavp-bench --bin experiments_bench -- \
        --jobs 4 --out BENCH_experiments.json

    echo "== fault sweep smoke (clean→stress battery, writes faults.csv/json)"
    cargo run --release -p adavp-bench --bin experiments -- faults \
        --scale smoke --out target/ci-results
fi

echo "CI OK"
