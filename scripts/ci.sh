#!/bin/sh
# CI gate: build, test, lint, and a bench smoke run that regenerates
# BENCH_kernels.json (which also re-asserts LK cross-path bit-parity).
#
# Usage: scripts/ci.sh [--no-bench]
set -eu
cd "$(dirname "$0")/.."

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== clippy"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${1:-}" != "--no-bench" ]; then
    echo "== kernel bench smoke (writes BENCH_kernels.json)"
    cargo run --release -p adavp-vision --bin kernels_bench -- BENCH_kernels.json
fi

echo "CI OK"
