#!/bin/sh
# CI gate: build, test, lint, and bench smoke runs that regenerate
# BENCH_kernels.json (which also re-asserts LK cross-path bit-parity) and
# BENCH_experiments.json (which asserts parallel-harness result parity).
#
# Usage: scripts/ci.sh [--no-bench] [--strict]
#   --no-bench  skip the bench/smoke half (build+test+lint only)
#   --strict    make the bench-diff regression gate and the lint.baseline
#               drift check fail CI instead of just printing a warning
set -eu
cd "$(dirname "$0")/.."

NO_BENCH=0
STRICT=0
for arg in "$@"; do
    case "$arg" in
    --no-bench) NO_BENCH=1 ;;
    --strict) STRICT=1 ;;
    *)
        echo "unknown flag: $arg (usage: scripts/ci.sh [--no-bench] [--strict])" >&2
        exit 2
        ;;
    esac
done

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test (overflow-checks=on via [profile.test])"
cargo test -q --workspace

echo "== determinism lint (adavp-lint --fix-check; DESIGN.md §13/§18)"
cargo run --release -p adavp-lint -- --fix-check

echo "== lint --json byte-stability + baseline diff (DESIGN.md §18)"
mkdir -p target/ci-results
cargo run --release -q -p adavp-lint -- --json target/ci-results/lint_a.json
cargo run --release -q -p adavp-lint -- --json target/ci-results/lint_b.json
cmp target/ci-results/lint_a.json target/ci-results/lint_b.json
# Regenerate the baseline into a scratch file and diff against the committed
# one: drift means new legacy debt was absorbed (or paid down) without the
# checked-in lint.baseline being updated. Warn by default; gate on --strict.
cargo run --release -q -p adavp-lint -- \
    --write-baseline --root . >/dev/null
if git diff --quiet -- lint.baseline; then
    echo "lint.baseline matches the live tree"
else
    git checkout -- lint.baseline
    if [ "$STRICT" = "1" ]; then
        echo "FAIL: lint.baseline is out of date; run adavp-lint --write-baseline and audit the diff" >&2
        exit 1
    fi
    echo "WARN: lint.baseline drifted from the live tree (non-blocking; re-run with --strict to gate)"
fi

echo "== miri smoke (UB check over the dep-free deterministic core)"
if cargo miri --version >/dev/null 2>&1; then
    # adavp-sim and adavp-lint are dependency-free, so Miri can interpret
    # them without native FFI or vendored stubs.
    MIRIFLAGS="-Zmiri-disable-isolation" cargo miri test -q -p adavp-sim -p adavp-lint --lib
else
    echo "cargo miri unavailable (component not installed); skipping UB smoke"
fi

echo "== rustfmt"
cargo fmt --all -- --check

echo "== clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault conformance suite (DESIGN.md §11 degradation policies)"
cargo test -q --test fault_conformance

echo "== scheme conformance suite (DESIGN.md §16 cascade gating + CTD trigger)"
cargo test -q --test scheme_conformance

echo "== serve determinism suite (DESIGN.md §15 fleet serving)"
cargo test -q --test serve_determinism

echo "== SIMD/fixed-point kernel parity (DESIGN.md §14; golden bytes + adversarial shapes)"
cargo test -q -p adavp-vision --test simd_parity
cargo test -q -p adavp-vision --test simd_parity --no-default-features
cargo test -q -p adavp-vision --test simd_parity --no-default-features --features simd
cargo test -q -p adavp-vision --test simd_parity --no-default-features --features fixed-point

if [ "$NO_BENCH" != "1" ]; then
    # Snapshot the committed baselines before the smoke runs regenerate the
    # files in place, so bench-diff compares fresh-vs-committed.
    mkdir -p target/ci-results
    git show HEAD:BENCH_kernels.json > target/ci-results/baseline_kernels.json 2>/dev/null || true
    git show HEAD:BENCH_serve.json > target/ci-results/baseline_serve.json 2>/dev/null || true

    echo "== kernel bench smoke (writes BENCH_kernels.json)"
    cargo run --release -p adavp-vision --bin kernels_bench -- BENCH_kernels.json

    echo "== parallel harness smoke (fig6 at --jobs 2)"
    cargo run --release -p adavp-bench --bin experiments -- fig6 \
        --scale smoke --jobs 2 --out target/ci-results

    echo "== harness parity bench (writes BENCH_experiments.json; exits non-zero on any jobs-1 vs jobs-N result mismatch)"
    cargo run --release -p adavp-bench --bin experiments_bench -- \
        --jobs 4 --out BENCH_experiments.json

    echo "== fault sweep smoke (clean→stress battery incl. cascade + CTD, writes faults.csv/json)"
    cargo run --release -p adavp-bench --bin experiments -- faults \
        --scale smoke --out target/ci-results

    echo "== telemetry trace smoke (Chrome export parses and is run-to-run byte-identical)"
    cargo run --release --bin adavp -- trace --scenario highway --seed 7 \
        --frames 90 --chrome target/ci-results/trace_a.json
    cargo run --release --bin adavp -- trace --scenario highway --seed 7 \
        --frames 90 --chrome target/ci-results/trace_b.json
    cmp target/ci-results/trace_a.json target/ci-results/trace_b.json
    if command -v python3 >/dev/null 2>&1; then
        python3 - <<'EOF'
import json
with open("target/ci-results/trace_a.json") as f:
    doc = json.load(f)
events = doc["traceEvents"]
tids = {e["tid"] for e in events}
assert len(tids) >= 3, f"expected >=3 tracks, got {sorted(tids)}"
assert any(e.get("ph") == "X" for e in events), "no spans in chrome trace"
print(f"chrome trace OK: {len(events)} events on {len(tids)} tracks")
EOF
    fi

    echo "== serve sweep smoke (all three schemes, --jobs 2 vs --jobs 1 byte parity incl. metrics)"
    mkdir -p target/ci-results
    cargo run --release --bin adavp -- serve --streams 1,8,24 --cycles 6 --jobs 1 \
        --schemes mpdt,cascade,ctd \
        --csv target/ci-results/serve_j1.csv --json target/ci-results/serve_j1.json \
        --metrics-prom target/ci-results/metrics_j1.prom \
        --metrics-json target/ci-results/metrics_j1.json
    cargo run --release --bin adavp -- serve --streams 1,8,24 --cycles 6 --jobs 2 \
        --schemes mpdt,cascade,ctd \
        --csv target/ci-results/serve_j2.csv --json target/ci-results/serve_j2.json \
        --metrics-prom target/ci-results/metrics_j2.prom \
        --metrics-json target/ci-results/metrics_j2.json
    cmp target/ci-results/serve_j1.csv target/ci-results/serve_j2.csv
    cmp target/ci-results/serve_j1.json target/ci-results/serve_j2.json
    cmp target/ci-results/metrics_j1.prom target/ci-results/metrics_j2.prom
    cmp target/ci-results/metrics_j1.json target/ci-results/metrics_j2.json

    echo "== metrics report smoke (2-stream fleet, SLO budget table)"
    cargo run --release --bin adavp -- metrics --streams 2 --gpus 1 --cycles 6 \
        --prom target/ci-results/fleet_metrics.prom

    echo "== serve bench (writes BENCH_serve.json; asserts batched >= 1.5x unbatched + jobs parity)"
    cargo run --release -p adavp-bench --bin serve_bench -- --jobs 4 --out BENCH_serve.json

    echo "== bench-diff regression gate (fresh vs committed baselines)"
    DIFF_FLAGS=""
    if [ -s target/ci-results/baseline_serve.json ]; then
        DIFF_FLAGS="$DIFF_FLAGS --baseline-serve target/ci-results/baseline_serve.json --fresh-serve BENCH_serve.json"
    fi
    if [ -s target/ci-results/baseline_kernels.json ]; then
        DIFF_FLAGS="$DIFF_FLAGS --baseline-kernels target/ci-results/baseline_kernels.json --fresh-kernels BENCH_kernels.json"
    fi
    if [ -n "$DIFF_FLAGS" ]; then
        if [ "$STRICT" = "1" ]; then
            # shellcheck disable=SC2086
            cargo run --release -p adavp-bench --bin bench-diff -- $DIFF_FLAGS
        else
            # shellcheck disable=SC2086
            cargo run --release -p adavp-bench --bin bench-diff -- $DIFF_FLAGS ||
                echo "WARN: bench regression beyond tolerance (non-blocking; re-run with --strict to gate)"
        fi
    else
        echo "no committed baselines found; skipping bench-diff"
    fi

    echo "== telemetry determinism suite (chrome trace bytes across jobs)"
    cargo test -q -p adavp-bench --test parallel_determinism \
        chrome_trace_bytes_identical_across_jobs --release
fi

echo "CI OK"
