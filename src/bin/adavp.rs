//! The `adavp` command-line tool: generate synthetic videos, run any of the
//! pipelines over them, and export annotated frames.
//!
//! ```text
//! adavp scenarios
//! adavp generate --scenario highway --seed 7 --frames 90 --out frames/
//! adavp run --scenario city-street --seed 3 --frames 300 --system adavp
//! adavp run --scenario highway --system mpdt-608 --gt true
//! adavp trace --scenario highway --system adavp --chrome trace.json
//! adavp serve --streams 1,8,64 --gpus 4 --jobs 4 --csv sweep.csv
//! adavp metrics --streams 16 --gpus 2 --prom metrics.prom
//! ```

use adavp::core::adaptation::AdaptationModel;
use adavp::core::analysis;
use adavp::core::eval::{evaluate_on_clip, EvalConfig, GroundTruthMode};
use adavp::core::export::write_trace_json;
use adavp::core::metrics::{self, MetricsConfig};
use adavp::core::pipeline::{
    CascadeConfig, CascadePipeline, ContinuousPipeline, CtdConfig, CtdPipeline,
    DetectorOnlyPipeline, MarlinConfig, MarlinPipeline, MpdtPipeline, PipelineConfig,
    SettingPolicy, VideoProcessor,
};
use adavp::core::serve::{
    run_fleet, run_sweep, run_sweep_with_metrics, sweep_csv, sweep_json, sweep_text, ServeConfig,
    ServeScheme, SweepConfig,
};
use adavp::core::telemetry::{self, report, TelemetryConfig};
use adavp::detector::{DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::export::export_clip;
use adavp::video::scenario::Scenario;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Flags each subcommand accepts, for unknown-flag diagnostics.
const KNOWN_FLAGS: &[(&str, &[&str])] = &[
    ("scenarios", &[]),
    ("generate", &["frames", "out", "scenario", "seed", "stride"]),
    (
        "run",
        &["frames", "gt", "scenario", "seed", "system", "trace-out"],
    ),
    ("trace", &["chrome", "frames", "scenario", "seed", "system"]),
    (
        "serve",
        &[
            "batch",
            "csv",
            "cycles",
            "gpus",
            "jobs",
            "json",
            "metrics-json",
            "metrics-prom",
            "profile",
            "schemes",
            "seed",
            "streams",
            "window",
        ],
    ),
    (
        "metrics",
        &[
            "batch", "bucket", "cadence", "cycles", "gpus", "json", "profile", "prom", "scheme",
            "seed", "streams", "window",
        ],
    ),
];

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         adavp scenarios\n  \
         adavp generate --scenario <name> [--seed N] [--frames N] [--stride N] --out <dir>\n  \
         adavp run --scenario <name> [--seed N] [--frames N] [--system <sys>] [--gt oracle|true]\n              \
                 [--trace-out <file.json>]\n  \
         adavp trace --scenario <name> [--seed N] [--frames N] [--system <sys>] [--chrome <file.json>]\n  \
         adavp serve [--streams 1,8,64,256,1024] [--cycles N] [--gpus N] [--batch N] [--window MS]\n              \
                 [--jobs N] [--seed N] [--profile none|brownout|both] [--schemes mpdt,cascade,ctd]\n              \
                 [--csv <file>] [--json <file>] [--metrics-prom <file>] [--metrics-json <file>]\n  \
         adavp metrics [--streams N] [--cycles N] [--gpus N] [--batch N] [--window MS] [--seed N]\n              \
                 [--scheme mpdt|cascade|ctd] [--profile none|brownout] [--cadence MS] [--bucket MS]\n              \
                 [--prom <file>] [--json <file>]\n\n\
         systems: adavp (default), mpdt-320/416/512/608, marlin-320/416/512/608,\n          \
         cascade-320/416/512/608, ctd-320/416/512/608,\n          \
         without-tracking-512, continuous-320, continuous-608, tiny"
    );
    ExitCode::from(2)
}

// A BTreeMap (not HashMap) so unknown-flag listings and other diagnostics
// built from the map iterate in a deterministic order.
fn parse_flags(args: &[String]) -> BTreeMap<String, String> {
    let mut flags = BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if let Some(v) = it.next() {
                flags.insert(key.to_string(), v.clone());
            }
        }
    }
    flags
}

fn find_scenario(name: &str) -> Option<Scenario> {
    Scenario::ALL.into_iter().find(|s| s.spec().name == name)
}

fn build_system(name: &str, cfg: PipelineConfig) -> Option<Box<dyn VideoProcessor>> {
    let det = SimulatedDetector::new(DetectorConfig::default());
    let fixed = |s: &str| -> Option<ModelSetting> {
        Some(match s {
            "320" => ModelSetting::Yolo320,
            "416" => ModelSetting::Yolo416,
            "512" => ModelSetting::Yolo512,
            "608" => ModelSetting::Yolo608,
            _ => return None,
        })
    };
    Some(match name {
        "adavp" => Box::new(MpdtPipeline::new(
            det,
            SettingPolicy::Adaptive(AdaptationModel::default_model()),
            cfg,
        )),
        "tiny" => Box::new(ContinuousPipeline::new(det, ModelSetting::Tiny320, cfg)),
        n if n.starts_with("mpdt-") => {
            let s = fixed(&n[5..])?;
            Box::new(MpdtPipeline::new(det, SettingPolicy::Fixed(s), cfg))
        }
        n if n.starts_with("marlin-") => {
            let s = fixed(&n[7..])?;
            Box::new(MarlinPipeline::new(det, s, cfg, MarlinConfig::default()))
        }
        n if n.starts_with("cascade-") => {
            let s = fixed(&n[8..])?;
            Box::new(CascadePipeline::new(det, s, cfg, CascadeConfig::default()))
        }
        n if n.starts_with("ctd-") => {
            let s = fixed(&n[4..])?;
            Box::new(CtdPipeline::new(det, s, cfg, CtdConfig::default()))
        }
        n if n.starts_with("without-tracking-") => {
            let s = fixed(&n[17..])?;
            Box::new(DetectorOnlyPipeline::new(det, s, cfg))
        }
        n if n.starts_with("continuous-") => {
            let s = fixed(&n[11..])?;
            Box::new(ContinuousPipeline::new(det, s, cfg))
        }
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let flags = parse_flags(&args[1..]);
    if let Some((_, known)) = KNOWN_FLAGS.iter().find(|(c, _)| c == cmd) {
        let unknown: Vec<String> = flags
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .map(|k| format!("--{k}"))
            .collect();
        if !unknown.is_empty() {
            eprintln!("unknown flag(s) for `{cmd}`: {}\n", unknown.join(", "));
            return usage();
        }
    }
    let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let frames: u32 = flags
        .get("frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(150);

    match cmd.as_str() {
        "scenarios" => {
            println!("{:<22} {:>10} {:>12}", "name", "camera", "change px/f");
            for s in Scenario::ALL {
                let spec = s.spec();
                let cam = match spec.camera {
                    adavp::video::scenario::CameraMotion::Static => "static",
                    adavp::video::scenario::CameraMotion::Pan { .. } => "pan",
                    adavp::video::scenario::CameraMotion::Handheld { .. } => "handheld",
                    adavp::video::scenario::CameraMotion::Vehicle { .. } => "vehicle",
                };
                println!(
                    "{:<22} {:>10} {:>12.2}",
                    spec.name,
                    cam,
                    spec.nominal_change_rate()
                );
            }
            ExitCode::SUCCESS
        }
        "generate" => {
            let Some(name) = flags.get("scenario") else {
                return usage();
            };
            let Some(scenario) = find_scenario(name) else {
                eprintln!("unknown scenario: {name} (try `adavp scenarios`)");
                return ExitCode::from(2);
            };
            let Some(out) = flags.get("out").map(PathBuf::from) else {
                return usage();
            };
            let stride: usize = flags
                .get("stride")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            let clip = VideoClip::generate(name, &scenario.spec(), seed, frames);
            match export_clip(&clip, &out, stride) {
                Ok(n) => {
                    println!(
                        "wrote {n} annotated frames of {name} (seed {seed}) to {}",
                        out.display()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("export failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let Some(name) = flags.get("scenario") else {
                return usage();
            };
            let Some(scenario) = find_scenario(name) else {
                eprintln!("unknown scenario: {name} (try `adavp scenarios`)");
                return ExitCode::from(2);
            };
            let system = flags.get("system").map(String::as_str).unwrap_or("adavp");
            let Some(mut pipeline) = build_system(system, PipelineConfig::default()) else {
                eprintln!("unknown system: {system}");
                return usage();
            };
            let gt = match flags.get("gt").map(String::as_str) {
                Some("true") => GroundTruthMode::True,
                _ => GroundTruthMode::default(),
            };
            let clip = VideoClip::generate(name, &scenario.spec(), seed, frames);
            let eval = EvalConfig {
                ground_truth: gt,
                ..EvalConfig::default()
            };
            let result = evaluate_on_clip(pipeline.as_mut(), &clip, &eval);
            let stats = analysis::analyze(&result.trace);
            println!("system:    {}", result.trace.pipeline);
            println!("video:     {name} (seed {seed}, {frames} frames)");
            println!(
                "accuracy:  {:.1}% of frames with F1 >= 0.7",
                result.accuracy * 100.0
            );
            println!(
                "cycles:    {} ({} switches, mean {:.0} ms)",
                stats.cycles, stats.switches, stats.mean_cycle_ms
            );
            let src = stats.frame_sources;
            println!(
                "frames:    {:.0}% detected / {:.0}% tracked / {:.0}% held / {:.0}% dropped",
                src.detected * 100.0,
                src.tracked * 100.0,
                src.held * 100.0,
                src.dropped * 100.0
            );
            let faulted = result.trace.fault_count();
            if faulted > 0 {
                println!(
                    "faults:    {} cycles faulted ({} degraded, {} diverged)",
                    faulted,
                    result.trace.degraded_cycle_count(),
                    result.trace.diverged_cycle_count()
                );
            }
            if let Some(v) = stats.mean_velocity {
                println!("velocity:  {v:.2} px/frame mean");
            }
            println!("energy:    {}", result.trace.energy);
            println!(
                "realtime:  {:.2}x video duration",
                result.trace.latency_multiplier(&clip)
            );
            if let Some(path) = flags.get("trace-out").map(PathBuf::from) {
                match write_trace_json(&result.trace, Some(&result.frame_f1), &path) {
                    Ok(()) => println!("trace:     written to {}", path.display()),
                    Err(e) => {
                        eprintln!("failed to write trace: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "trace" => {
            let Some(name) = flags.get("scenario") else {
                return usage();
            };
            let Some(scenario) = find_scenario(name) else {
                eprintln!("unknown scenario: {name} (try `adavp scenarios`)");
                return ExitCode::from(2);
            };
            let system = flags.get("system").map(String::as_str).unwrap_or("adavp");
            let cfg = PipelineConfig {
                telemetry: TelemetryConfig::enabled(),
                ..PipelineConfig::default()
            };
            let Some(mut pipeline) = build_system(system, cfg) else {
                eprintln!("unknown system: {system}");
                return usage();
            };
            let clip = VideoClip::generate(name, &scenario.spec(), seed, frames);
            let trace = pipeline.process(&clip);
            println!("system:    {}", trace.pipeline);
            println!("video:     {name} (seed {seed}, {frames} frames)");
            println!(
                "telemetry: {} spans, {} events",
                trace.telemetry.spans.len(),
                trace.telemetry.events.len()
            );
            println!();
            print!("{}", report::flame_report(&trace.telemetry));
            let dist = telemetry::distributions([&trace]);
            let mut rows: Vec<(String, &telemetry::Histogram)> =
                vec![("all cycles".into(), &dist.cycle_ms)];
            for (s, h) in &dist.cycle_ms_by_setting {
                rows.push((s.to_string(), h));
            }
            println!();
            print!("{}", report::percentile_table("cycle latency (ms)", &rows));
            if !dist.velocity.is_empty() {
                println!();
                print!(
                    "{}",
                    report::percentile_table(
                        "content velocity (px/frame)",
                        &[("measured".into(), &dist.velocity)],
                    )
                );
            }
            if let Some(path) = flags.get("chrome").map(PathBuf::from) {
                let label = format!("{system} / {name}");
                match telemetry::chrome::write_chrome_trace(
                    &[(label.as_str(), &trace.telemetry)],
                    &path,
                ) {
                    Ok(()) => println!(
                        "\nchrome trace written to {} (load in chrome://tracing or ui.perfetto.dev)",
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("failed to write chrome trace: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let mut sweep = SweepConfig::default();
            if let Some(v) = flags.get("streams") {
                let counts: Option<Vec<usize>> =
                    v.split(',').map(|s| s.trim().parse().ok()).collect();
                let Some(counts) = counts.filter(|c| !c.is_empty()) else {
                    eprintln!("--streams expects a comma-separated list of counts: {v}");
                    return ExitCode::from(2);
                };
                sweep.stream_counts = counts;
            }
            if let Some(v) = flags.get("cycles").and_then(|v| v.parse().ok()) {
                sweep.cycles = v;
            }
            if let Some(v) = flags.get("gpus").and_then(|v| v.parse().ok()) {
                sweep.gpus = v;
            }
            if let Some(v) = flags.get("batch").and_then(|v| v.parse().ok()) {
                sweep.max_batch = v;
            }
            if let Some(v) = flags.get("window").and_then(|v| v.parse().ok()) {
                sweep.window_ms = v;
            }
            if let Some(v) = flags.get("seed").and_then(|v| v.parse().ok()) {
                sweep.seed = v;
            }
            if let Some(v) = flags.get("schemes") {
                let schemes: Option<Vec<ServeScheme>> =
                    v.split(',').map(|s| ServeScheme::parse(s.trim())).collect();
                let Some(schemes) = schemes.filter(|s| !s.is_empty()) else {
                    eprintln!("--schemes expects a comma-separated subset of mpdt,cascade,ctd: {v}");
                    return ExitCode::from(2);
                };
                sweep.schemes = schemes;
            }
            match flags.get("profile").map(String::as_str) {
                Some("none") => sweep.profiles.truncate(1),
                Some("brownout") => {
                    sweep.profiles.remove(0);
                }
                Some("both") | None => {}
                Some(other) => {
                    eprintln!("unknown profile: {other} (none|brownout|both)");
                    return ExitCode::from(2);
                }
            }
            let jobs: usize = flags.get("jobs").and_then(|v| v.parse().ok()).unwrap_or(1);
            let exec = adavp::vision::exec::Executor::new(jobs);
            let want_metrics =
                flags.contains_key("metrics-prom") || flags.contains_key("metrics-json");
            let rows = if want_metrics {
                let (rows, registry) = run_sweep_with_metrics(&sweep, &exec);
                if let Some(path) = flags.get("metrics-prom").map(PathBuf::from) {
                    if let Err(e) = std::fs::write(&path, metrics::prometheus_text(&registry)) {
                        eprintln!("failed to write metrics exposition: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("prom:      written to {}", path.display());
                }
                if let Some(path) = flags.get("metrics-json").map(PathBuf::from) {
                    if let Err(e) = std::fs::write(&path, metrics::json_snapshot(&registry)) {
                        eprintln!("failed to write metrics snapshot: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!("metrics:   written to {}", path.display());
                }
                rows
            } else {
                run_sweep(&sweep, &exec)
            };
            print!("{}", sweep_text(&rows));
            if let Some(path) = flags.get("csv").map(PathBuf::from) {
                if let Err(e) = std::fs::write(&path, sweep_csv(&rows)) {
                    eprintln!("failed to write CSV: {e}");
                    return ExitCode::FAILURE;
                }
                println!("csv:       written to {}", path.display());
            }
            if let Some(path) = flags.get("json").map(PathBuf::from) {
                if let Err(e) = std::fs::write(&path, sweep_json(&rows)) {
                    eprintln!("failed to write JSON: {e}");
                    return ExitCode::FAILURE;
                }
                println!("json:      written to {}", path.display());
            }
            ExitCode::SUCCESS
        }
        "metrics" => {
            let streams: usize = flags
                .get("streams")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let cycles: usize = flags
                .get("cycles")
                .and_then(|v| v.parse().ok())
                .unwrap_or(20);
            let mut cfg = ServeConfig::default();
            cfg.seed = seed;
            cfg.streams = ServeConfig::synthetic_streams(streams, cycles, seed);
            if let Some(v) = flags.get("gpus").and_then(|v| v.parse().ok()) {
                cfg.batch.gpus = v;
            }
            if let Some(v) = flags.get("batch").and_then(|v| v.parse().ok()) {
                cfg.batch.max_batch = v;
            }
            if let Some(v) = flags.get("window").and_then(|v| v.parse().ok()) {
                cfg.batch.window_ms = v;
            }
            if let Some(v) = flags.get("scheme") {
                let Some(scheme) = ServeScheme::parse(v.trim()) else {
                    eprintln!("unknown scheme: {v} (mpdt|cascade|ctd)");
                    return ExitCode::from(2);
                };
                cfg.scheme = scheme;
            }
            match flags.get("profile").map(String::as_str) {
                Some("brownout") => cfg.faults = adavp::sim::FaultProfile::brownout(0xb0b0),
                Some("none") | None => {}
                Some(other) => {
                    eprintln!("unknown profile: {other} (none|brownout)");
                    return ExitCode::from(2);
                }
            }
            let cadence: f64 = flags
                .get("cadence")
                .and_then(|v| v.parse().ok())
                .filter(|v: &f64| v.is_finite() && *v > 0.0)
                .unwrap_or(250.0);
            let bucket: f64 = flags
                .get("bucket")
                .and_then(|v| v.parse().ok())
                .filter(|v: &f64| v.is_finite() && *v > 0.0)
                .unwrap_or(cadence * 4.0);
            cfg.metrics = MetricsConfig {
                enabled: true,
                cadence_ms: cadence,
                per_stream: true,
            };
            let report = run_fleet(&cfg);
            let m = report.metrics.as_ref().expect("metrics were enabled");
            println!(
                "fleet:     {} streams requested, {} admitted, {} GPUs ({})",
                report.requested,
                report.admitted,
                cfg.batch.gpus,
                cfg.scheme.label()
            );
            println!(
                "cycles:    {} over {:.0} ms virtual ({:.2} detections/s, GPU util {:.0}%)",
                report.cycles,
                report.horizon_ms,
                report.throughput_dps,
                report.gpu_utilization * 100.0
            );
            println!(
                "telemetry: {} burn-alert events",
                m.telemetry.events.len()
            );
            println!();
            print!("{}", metrics::report::utilization_report(&m.registry, bucket));
            if let Some(path) = flags.get("prom").map(PathBuf::from) {
                if let Err(e) = std::fs::write(&path, metrics::prometheus_text(&m.registry)) {
                    eprintln!("failed to write metrics exposition: {e}");
                    return ExitCode::FAILURE;
                }
                println!("prom:      written to {}", path.display());
            }
            if let Some(path) = flags.get("json").map(PathBuf::from) {
                if let Err(e) = std::fs::write(&path, metrics::json_snapshot(&m.registry)) {
                    eprintln!("failed to write metrics snapshot: {e}");
                    return ExitCode::FAILURE;
                }
                println!("json:      written to {}", path.display());
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
