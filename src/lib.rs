//! # AdaVP — continuous, real-time object detection without offloading
//!
//! A Rust reproduction of *"Continuous, Real-Time Object Detection on Mobile
//! Devices without Offloading"* (Liu, Ding, Du — ICDCS 2020): the **MPDT**
//! parallel detection + tracking pipeline and the **AdaVP** DNN-model-setting
//! adaptation system, together with every substrate the paper's evaluation
//! needs (synthetic video worlds, a calibrated YOLOv3 latency/accuracy
//! model, real Shi-Tomasi + Lucas-Kanade tracking, a TX2-style platform and
//! energy simulator, and the full metric stack).
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`vision`] | `adavp-vision` | images, pyramids, Shi-Tomasi corners, pyramidal LK flow |
//! | [`video`] | `adavp-video` | world simulator, 14 scenario presets, rasterizer, clips, datasets |
//! | [`detector`] | `adavp-detector` | simulated YOLOv3 model settings (tiny/320/416/512/608/704) |
//! | [`metrics`] | `adavp-metrics` | box matching, F1, per-video accuracy, stats |
//! | [`sim`] | `adavp-sim` | virtual time, event queue, resources, energy meter |
//! | [`core`] | `adavp-core` | object tracker, MPDT/AdaVP/MARLIN/baseline pipelines, adaptation, threaded runtime, [`core::telemetry`] (span tracing, histograms, Chrome trace export) |
//!
//! # Quickstart
//!
//! ```
//! use adavp::core::pipeline::{MpdtPipeline, PipelineConfig, SettingPolicy, VideoProcessor};
//! use adavp::core::adaptation::AdaptationModel;
//! use adavp::core::eval::{evaluate_on_clip, EvalConfig};
//! use adavp::detector::{DetectorConfig, SimulatedDetector};
//! use adavp::video::{clip::VideoClip, scenario::Scenario};
//!
//! // Generate a synthetic highway video...
//! let mut spec = Scenario::Highway.spec();
//! spec.width = 160; spec.height = 96;
//! let clip = VideoClip::generate("demo", &spec, 42, 45);
//!
//! // ...and run AdaVP over it.
//! let mut adavp = MpdtPipeline::new(
//!     SimulatedDetector::new(DetectorConfig::default()),
//!     SettingPolicy::Adaptive(AdaptationModel::default_model()),
//!     PipelineConfig::default(),
//! );
//! let result = evaluate_on_clip(&mut adavp, &clip, &EvalConfig::default());
//! assert_eq!(result.frame_f1.len(), clip.len());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use adavp_core as core;
pub use adavp_detector as detector;
pub use adavp_metrics as metrics;
pub use adavp_sim as sim;
pub use adavp_video as video;
pub use adavp_vision as vision;
