//! Cross-crate integration tests: whole pipelines over rendered video,
//! exercising vision + video + detector + sim + core together.

use adavp::core::adaptation::AdaptationModel;
use adavp::core::eval::{evaluate_on_clip, ground_truth_boxes, EvalConfig, GroundTruthMode};
use adavp::core::pipeline::{
    DetectorOnlyPipeline, FrameSource, MarlinConfig, MarlinPipeline, MpdtPipeline, PipelineConfig,
    SettingPolicy, VideoProcessor,
};
use adavp::detector::{DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::scenario::Scenario;

fn clip(scenario: Scenario, seed: u64, frames: u32) -> VideoClip {
    let mut spec = scenario.spec();
    spec.width = 320;
    spec.height = 180;
    spec.size_range = (22.0, 40.0);
    VideoClip::generate("e2e", &spec, seed, frames)
}

fn adavp() -> MpdtPipeline<SimulatedDetector> {
    MpdtPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        SettingPolicy::Adaptive(AdaptationModel::default_model()),
        PipelineConfig::default(),
    )
}

fn mpdt(setting: ModelSetting) -> MpdtPipeline<SimulatedDetector> {
    MpdtPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        SettingPolicy::Fixed(setting),
        PipelineConfig::default(),
    )
}

#[test]
fn identical_runs_produce_identical_traces() {
    // DESIGN.md §7: two runs with the same seed are byte-identical.
    let c = clip(Scenario::Highway, 3, 120);
    let t1 = adavp().process(&c);
    let t2 = adavp().process(&c);
    assert_eq!(t1, t2);
    let e1 = evaluate_on_clip(&mut adavp(), &c, &EvalConfig::default());
    let e2 = evaluate_on_clip(&mut adavp(), &c, &EvalConfig::default());
    assert_eq!(e1.frame_f1, e2.frame_f1);
    assert_eq!(e1.accuracy, e2.accuracy);
}

#[test]
fn every_pipeline_covers_every_frame() {
    let c = clip(Scenario::Intersection, 5, 100);
    let mut pipelines: Vec<Box<dyn VideoProcessor>> = vec![
        Box::new(adavp()),
        Box::new(mpdt(ModelSetting::Yolo320)),
        Box::new(mpdt(ModelSetting::Yolo608)),
        Box::new(MarlinPipeline::new(
            SimulatedDetector::new(DetectorConfig::default()),
            ModelSetting::Yolo512,
            PipelineConfig::default(),
            MarlinConfig::default(),
        )),
        Box::new(DetectorOnlyPipeline::new(
            SimulatedDetector::new(DetectorConfig::default()),
            ModelSetting::Yolo512,
            PipelineConfig::default(),
        )),
    ];
    for p in &mut pipelines {
        let trace = p.process(&c);
        assert_eq!(trace.outputs.len(), 100, "{}", p.name());
        for (i, o) in trace.outputs.iter().enumerate() {
            assert_eq!(o.frame_index as usize, i, "{}", p.name());
        }
        assert!(trace.energy.total_wh() > 0.0, "{}", p.name());
    }
}

#[test]
fn mpdt_beats_detector_only_on_dynamic_video() {
    // The paper's Fig. 6: tracking between detections adds accuracy.
    let c = clip(Scenario::Highway, 7, 200);
    let eval = EvalConfig::default();
    let with_tracking = evaluate_on_clip(&mut mpdt(ModelSetting::Yolo512), &c, &eval);
    let mut wo = DetectorOnlyPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        ModelSetting::Yolo512,
        PipelineConfig::default(),
    );
    let without = evaluate_on_clip(&mut wo, &c, &eval);
    assert!(
        with_tracking.accuracy >= without.accuracy,
        "MPDT {} vs detector-only {}",
        with_tracking.accuracy,
        without.accuracy
    );
}

#[test]
fn mpdt_beats_marlin_on_fast_video() {
    // Parallel vs sequential: MARLIN's held frames during detection hurt.
    let c = clip(Scenario::Highway, 9, 200);
    let eval = EvalConfig::default();
    let parallel = evaluate_on_clip(&mut mpdt(ModelSetting::Yolo512), &c, &eval);
    let mut marlin = MarlinPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        ModelSetting::Yolo512,
        PipelineConfig::default(),
        MarlinConfig::default(),
    );
    let sequential = evaluate_on_clip(&mut marlin, &c, &eval);
    assert!(
        parallel.accuracy >= sequential.accuracy,
        "MPDT {} vs MARLIN {}",
        parallel.accuracy,
        sequential.accuracy
    );
}

#[test]
fn detected_frames_score_higher_than_held_frames() {
    let c = clip(Scenario::CityStreet, 11, 150);
    let ev = evaluate_on_clip(&mut mpdt(ModelSetting::Yolo512), &c, &EvalConfig::default());
    let mean_by = |src: FrameSource| {
        let v: Vec<f64> = ev
            .trace
            .outputs
            .iter()
            .zip(&ev.frame_f1)
            .filter(|(o, _)| o.source == src)
            .map(|(_, &f)| f)
            .collect();
        (v.iter().sum::<f64>() / v.len().max(1) as f64, v.len())
    };
    let (det, n_det) = mean_by(FrameSource::Detected);
    let (held, n_held) = mean_by(FrameSource::Held);
    assert!(n_det > 0 && n_held > 0);
    assert!(
        det > held,
        "fresh detections ({det:.2}) must outscore held frames ({held:.2})"
    );
}

#[test]
fn oracle_and_true_ground_truth_agree_on_ordering() {
    // Scoring against true GT instead of the YOLOv3-704 oracle must not
    // invert which pipeline is better (sanity for the pseudo-GT convention).
    let c = clip(Scenario::Highway, 13, 150);
    let eval_true = EvalConfig {
        ground_truth: GroundTruthMode::True,
        ..EvalConfig::default()
    };
    let eval_oracle = EvalConfig::default();

    let big_oracle = evaluate_on_clip(&mut mpdt(ModelSetting::Yolo608), &c, &eval_oracle);
    let small_oracle = evaluate_on_clip(&mut mpdt(ModelSetting::Yolo320), &c, &eval_oracle);
    let big_true = evaluate_on_clip(&mut mpdt(ModelSetting::Yolo608), &c, &eval_true);
    let small_true = evaluate_on_clip(&mut mpdt(ModelSetting::Yolo320), &c, &eval_true);
    assert_eq!(
        big_oracle.accuracy >= small_oracle.accuracy,
        big_true.accuracy >= small_true.accuracy,
        "GT conventions disagree on 608 vs 320 ordering"
    );
}

#[test]
fn adaptive_switches_on_mixed_content() {
    // A clip with strong activity modulation should make AdaVP change
    // settings at least once.
    let c = clip(Scenario::Intersection, 15, 300);
    let trace = adavp().process(&c);
    assert!(
        trace.switch_count() >= 1,
        "no setting switches over {} cycles",
        trace.cycles.len()
    );
}

#[test]
fn ground_truth_modes_both_available() {
    let c = clip(Scenario::Highway, 17, 10);
    let t = ground_truth_boxes(&c, GroundTruthMode::True);
    let o = ground_truth_boxes(&c, GroundTruthMode::default());
    assert_eq!(t.len(), 10);
    assert_eq!(o.len(), 10);
}
