//! Conformance suite for the fault-injection layer: pins each pipeline's
//! graceful-degradation policy for the four fault kinds (detector timeout,
//! detector failure, dropped frames, tracker divergence) plus the
//! determinism contract that makes fault experiments reproducible.
//!
//! Every test runs whole pipelines over small synthetic clips; none uses
//! wall-clock time or randomness beyond the seeded simulators, so the suite
//! is stable under any scheduling.

use adavp::core::export::trace_to_json;
use adavp::core::pipeline::{
    CascadeConfig, CascadePipeline, ContinuousPipeline, CtdConfig, CtdPipeline, DegradationPolicy,
    DetectorFault, DetectorOnlyPipeline, FrameSource, MarlinConfig, MarlinPipeline, MpdtPipeline,
    PipelineConfig, ProcessingTrace, SettingPolicy, VideoProcessor,
};
use adavp::detector::{DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::sim::fault::{FaultPlan, FaultProfile};
use adavp::video::clip::VideoClip;
use adavp::video::scenario::Scenario;

fn clip(frames: u32) -> VideoClip {
    let mut spec = Scenario::Highway.spec();
    spec.width = 240;
    spec.height = 140;
    spec.size_range = (18.0, 32.0);
    VideoClip::generate("conformance", &spec, 11, frames)
}

fn det() -> SimulatedDetector {
    SimulatedDetector::new(DetectorConfig::default())
}

fn cfg(profile: FaultProfile) -> PipelineConfig {
    PipelineConfig {
        faults: FaultPlan::new(profile),
        ..PipelineConfig::default()
    }
}

fn spike_profile(prob: f64, mult: f64) -> FaultProfile {
    FaultProfile {
        seed: 5,
        latency_spike_prob: prob,
        latency_spike_mult: (mult, mult),
        ..FaultProfile::none()
    }
}

fn assert_covered(trace: &ProcessingTrace, frames: usize) {
    assert_eq!(trace.outputs.len(), frames);
    for (i, o) in trace.outputs.iter().enumerate() {
        assert_eq!(o.frame_index as usize, i, "outputs must be index-aligned");
    }
    let f = trace.source_fractions();
    assert!((f.sum() - 1.0).abs() < 1e-9, "fractions must partition");
}

// ---- Detector timeout ----------------------------------------------------

/// A permanent 8x latency spike pushes every setting over the default
/// 2000 ms budget: every cycle must time out, burn exactly the budget on
/// the GPU, publish inherited (non-Detected) results, and step the setting
/// down one notch for the following cycle.
#[test]
fn mpdt_timeout_holds_gpu_for_budget_only_and_steps_down() {
    let c = clip(80);
    let mut p = MpdtPipeline::new(
        det(),
        SettingPolicy::Fixed(ModelSetting::Yolo512),
        cfg(spike_profile(1.0, 8.0)),
    );
    let trace = p.process(&c);
    assert_covered(&trace, 80);
    assert!(!trace.cycles.is_empty());
    for cy in &trace.cycles {
        assert!(
            matches!(cy.fault, Some(DetectorFault::Timeout { multiplier }) if multiplier == 8.0),
            "cycle {} fault {:?}",
            cy.index,
            cy.fault
        );
    }
    assert_eq!(trace.degraded_cycle_count(), trace.cycles.len());
    // Each timed-out attempt occupies the GPU for the budget, no more.
    let budget = DegradationPolicy::default()
        .detector_timeout_ms
        .expect("default has a budget");
    assert!(
        (trace.gpu_busy_ms - budget * trace.cycles.len() as f64).abs() < 1e-6,
        "gpu busy {} vs {} cycles x {budget} ms budget",
        trace.gpu_busy_ms,
        trace.cycles.len()
    );
    // No detection ever completed.
    assert!(trace
        .outputs
        .iter()
        .all(|o| o.source != FrameSource::Detected));
    // Step-down: every cycle after the first was scheduled one notch
    // lighter than the configured 512 (the Fixed policy re-asserts 512,
    // the degradation composes .lighter() on top).
    for cy in &trace.cycles[1..] {
        assert_eq!(cy.setting, ModelSetting::Yolo416, "cycle {}", cy.index);
    }
}

/// With intermittent spikes the step-down must be transient: a cycle
/// following a degraded one runs one notch lighter, a cycle following a
/// clean one is back at the configured setting.
#[test]
fn mpdt_step_down_is_transient() {
    let c = clip(120);
    let mut p = MpdtPipeline::new(
        det(),
        SettingPolicy::Fixed(ModelSetting::Yolo512),
        cfg(spike_profile(0.5, 5.0)),
    );
    let trace = p.process(&c);
    assert_covered(&trace, 120);
    let degraded = |f: &Option<DetectorFault>| {
        matches!(
            f,
            Some(DetectorFault::Timeout { .. }) | Some(DetectorFault::Failed { .. })
        )
    };
    let mut saw_step_down = false;
    let mut saw_recovery = false;
    for w in trace.cycles.windows(2) {
        let expected = if degraded(&w[0].fault) {
            saw_step_down = true;
            ModelSetting::Yolo416
        } else {
            saw_recovery = true;
            ModelSetting::Yolo512
        };
        assert_eq!(
            w[1].setting, expected,
            "cycle {} after fault {:?}",
            w[1].index, w[0].fault
        );
    }
    assert!(saw_step_down, "profile must degrade some cycle");
    assert!(saw_recovery, "profile must leave some cycle clean");
}

/// Disabling the budget and the step-down turns timeouts into plain slow
/// cycles: detections complete (as spikes), nothing degrades.
#[test]
fn timeout_policy_is_opt_out() {
    let c = clip(60);
    let mut config = cfg(spike_profile(1.0, 8.0));
    config.degradation = DegradationPolicy {
        detector_timeout_ms: None,
        step_down_on_timeout: false,
        ..DegradationPolicy::default()
    };
    let mut p = MpdtPipeline::new(det(), SettingPolicy::Fixed(ModelSetting::Yolo512), config);
    let trace = p.process(&c);
    assert_covered(&trace, 60);
    assert_eq!(trace.degraded_cycle_count(), 0);
    for cy in &trace.cycles {
        assert!(
            matches!(cy.fault, Some(DetectorFault::Spike { .. })),
            "cycle {} fault {:?}",
            cy.index,
            cy.fault
        );
        assert_eq!(cy.setting, ModelSetting::Yolo512);
    }
    assert!(trace
        .outputs
        .iter()
        .any(|o| o.source == FrameSource::Detected));
}

// ---- Detector failure / bounded retry ------------------------------------

/// A detector that fails every attempt exhausts the retry bound on every
/// cycle; the pipeline publishes inherited results and still terminates
/// (failed attempts consume virtual time, so progress is guaranteed).
#[test]
fn exhausted_retries_degrade_like_timeouts() {
    let profile = FaultProfile {
        seed: 3,
        detector_failure_prob: 1.0,
        ..FaultProfile::none()
    };
    let c = clip(60);
    for (label, mut p) in [
        (
            "mpdt",
            Box::new(MpdtPipeline::new(
                det(),
                SettingPolicy::Fixed(ModelSetting::Yolo512),
                cfg(profile.clone()),
            )) as Box<dyn VideoProcessor>,
        ),
        (
            "marlin",
            Box::new(MarlinPipeline::new(
                det(),
                ModelSetting::Yolo512,
                cfg(profile.clone()),
                MarlinConfig::default(),
            )),
        ),
        (
            "detector-only",
            Box::new(DetectorOnlyPipeline::new(
                det(),
                ModelSetting::Yolo512,
                cfg(profile.clone()),
            )),
        ),
    ] {
        let trace = p.process(&c);
        assert_covered(&trace, 60);
        let max_attempts = DegradationPolicy::default().max_detector_retries + 1;
        for cy in &trace.cycles {
            assert!(
                matches!(cy.fault, Some(DetectorFault::Failed { attempts }) if attempts == max_attempts),
                "{label}: cycle {} fault {:?}",
                cy.index,
                cy.fault
            );
        }
        assert!(
            trace
                .outputs
                .iter()
                .all(|o| o.source != FrameSource::Detected),
            "{label}: no detection can succeed"
        );
    }
}

/// Intermittent failures are absorbed by retries: retried cycles still
/// produce Detected frames, and recorded attempt counts respect the bound.
#[test]
fn intermittent_failures_are_retried_within_bound() {
    let profile = FaultProfile {
        seed: 8,
        detector_failure_prob: 0.4,
        ..FaultProfile::none()
    };
    let c = clip(90);
    let mut p = MpdtPipeline::new(
        det(),
        SettingPolicy::Fixed(ModelSetting::Yolo512),
        cfg(profile),
    );
    let trace = p.process(&c);
    assert_covered(&trace, 90);
    let max_attempts = DegradationPolicy::default().max_detector_retries + 1;
    let mut retried = 0;
    for cy in &trace.cycles {
        match cy.fault {
            Some(DetectorFault::Retried { attempts }) => {
                assert!((2..=max_attempts).contains(&attempts));
                retried += 1;
            }
            Some(DetectorFault::Failed { attempts }) => assert_eq!(attempts, max_attempts),
            Some(DetectorFault::Timeout { .. }) | Some(DetectorFault::Spike { .. }) => {
                panic!("no spikes configured")
            }
            None => {}
        }
    }
    assert!(retried > 0, "0.4 failure rate must exercise the retry path");
    assert!(trace
        .outputs
        .iter()
        .any(|o| o.source == FrameSource::Detected));
}

// ---- Dropped frames ------------------------------------------------------

/// Dropped frames inherit the previous display verbatim and are flagged:
/// every Dropped output repeats its predecessor's boxes, and only frames
/// the plan actually dropped carry the flag.
#[test]
fn dropped_frames_inherit_with_flag() {
    let profile = FaultProfile {
        seed: 21,
        frame_drop_prob: 0.35,
        ..FaultProfile::none()
    };
    let c = clip(90);
    let plan = FaultPlan::new(profile.clone()).for_stream(c.name());
    for (label, mut p) in [
        (
            "mpdt",
            Box::new(MpdtPipeline::new(
                det(),
                SettingPolicy::Fixed(ModelSetting::Yolo512),
                cfg(profile.clone()),
            )) as Box<dyn VideoProcessor>,
        ),
        (
            "detector-only",
            Box::new(DetectorOnlyPipeline::new(
                det(),
                ModelSetting::Yolo512,
                cfg(profile.clone()),
            )),
        ),
        (
            "continuous",
            Box::new(ContinuousPipeline::new(
                det(),
                ModelSetting::Yolo320,
                cfg(profile.clone()),
            )),
        ),
    ] {
        let trace = p.process(&c);
        assert_covered(&trace, 90);
        let mut dropped = 0;
        for (i, o) in trace.outputs.iter().enumerate() {
            if o.source == FrameSource::Dropped {
                dropped += 1;
                assert!(i > 0, "{label}: frame 0 is never dropped");
                assert!(
                    plan.frame_dropped(i),
                    "{label}: frame {i} flagged but not dropped by the plan"
                );
                assert_eq!(
                    o.boxes,
                    trace.outputs[i - 1].boxes,
                    "{label}: dropped frame {i} must repeat its predecessor"
                );
            }
        }
        assert!(dropped > 0, "{label}: 0.35 drop rate must drop something");
    }
}

/// The detector never waits on a dropped frame: it re-targets the nearest
/// delivered one. The only sanctioned exception is the late-delivery
/// fallback, which fires when every remaining frame was dropped — so a
/// dropped detection target implies a fully-dropped tail.
#[test]
fn detection_targets_are_delivered_frames() {
    let profile = FaultProfile {
        seed: 33,
        frame_drop_prob: 0.3,
        ..FaultProfile::none()
    };
    let c = clip(90);
    let plan = FaultPlan::new(profile.clone()).for_stream(c.name());
    let mut p = MpdtPipeline::new(
        det(),
        SettingPolicy::Fixed(ModelSetting::Yolo512),
        cfg(profile),
    );
    let trace = p.process(&c);
    for cy in &trace.cycles {
        let f = cy.detected_frame as usize;
        if plan.frame_dropped(f) {
            assert!(
                (f..c.len()).all(|i| plan.frame_dropped(i)),
                "cycle {} detected dropped frame {} outside the fallback case",
                cy.index,
                cy.detected_frame
            );
        }
    }
}

/// A flaky detector cannot break the cascade's coverage: refinements fail
/// with exhausted retries, but every refining cycle falls back to
/// proposal-only output (the reliable tiny pass) with its degraded flag
/// set, and the next refinement steps one setting lighter.
#[test]
fn cascade_flaky_detector_falls_back_to_proposals() {
    let profile = FaultProfile {
        seed: 3,
        detector_failure_prob: 1.0,
        ..FaultProfile::none()
    };
    let c = clip(90);
    let mut p = CascadePipeline::new(
        det(),
        ModelSetting::Yolo512,
        cfg(profile),
        CascadeConfig::default(),
    );
    let trace = p.process(&c);
    assert_covered(&trace, 90);
    let max_attempts = DegradationPolicy::default().max_detector_retries + 1;
    let refined: Vec<_> = trace
        .cycles
        .iter()
        .filter(|cy| cy.setting != ModelSetting::Tiny320)
        .collect();
    assert!(!refined.is_empty(), "the gate must open somewhere");
    for cy in &refined {
        assert!(
            matches!(cy.fault, Some(DetectorFault::Failed { attempts }) if attempts == max_attempts),
            "cycle {}: refinement fault {:?}",
            cy.index,
            cy.fault
        );
    }
    assert_eq!(trace.degraded_cycle_count(), refined.len());
    // Proposal-only fallback: the degraded cycles still publish output
    // (and it comes from the tiny pass, whose confidences sit below the
    // default gate, so later refinements re-fire instead of trusting it).
    assert!(trace
        .outputs
        .iter()
        .any(|o| o.source == FrameSource::Detected && !o.boxes.is_empty()));
    // Step-down: a refinement directly after a degraded refinement runs one
    // notch lighter than the configured 512.
    assert!(
        refined.iter().any(|cy| cy.setting == ModelSetting::Yolo416),
        "persistent failures must step the refinement setting down"
    );
}

/// CTD re-detects immediately when its tracker diverges: with the default
/// policy on, injected divergence shortens cycles relative to the same run
/// with the policy off, even though the confidence signal alone would never
/// trigger.
#[test]
fn ctd_divergence_forces_immediate_redetection() {
    let profile = FaultProfile {
        seed: 29,
        tracker_divergence_prob: 1.0,
        ..FaultProfile::none()
    };
    // A confidence threshold of zero can never fire (the decayed value
    // stays non-negative), so divergence alone decides when to re-detect.
    let ctd = CtdConfig {
        threshold: 0.0,
        max_cycle_frames: 60,
        ..CtdConfig::default()
    };
    let c = clip(150);
    let run = |redetect: bool| {
        let mut config = cfg(profile.clone());
        config.degradation = DegradationPolicy {
            redetect_on_divergence: redetect,
            ..DegradationPolicy::default()
        };
        CtdPipeline::new(det(), ModelSetting::Yolo320, config, ctd.clone()).process(&c)
    };
    let with_policy = run(true);
    let without = run(false);
    assert_covered(&with_policy, 150);
    assert!(
        with_policy.diverged_cycle_count() > 0,
        "forced divergence must be recorded"
    );
    assert!(
        with_policy.cycles.len() > without.cycles.len(),
        "divergence re-detection must shorten cycles: {} vs {}",
        with_policy.cycles.len(),
        without.cycles.len()
    );
}

// ---- Tracker divergence --------------------------------------------------

/// A diverging tracker truncates MPDT's tracking phase: with forced
/// divergence the pipeline records diverged cycles and tracks strictly
/// fewer frames than the clean run.
#[test]
fn mpdt_divergence_truncates_tracking() {
    let profile = FaultProfile {
        seed: 13,
        tracker_divergence_prob: 1.0,
        ..FaultProfile::none()
    };
    let c = clip(120);
    let run = |config: PipelineConfig| {
        MpdtPipeline::new(det(), SettingPolicy::Fixed(ModelSetting::Yolo512), config).process(&c)
    };
    let clean = run(PipelineConfig::default());
    let faulted = run(cfg(profile));
    assert_covered(&faulted, 120);
    assert!(
        faulted.diverged_cycle_count() > 0,
        "forced divergence must be recorded"
    );
    let tracked = |t: &ProcessingTrace| t.cycles.iter().map(|cy| cy.tracked as u64).sum::<u64>();
    assert!(
        tracked(&faulted) < tracked(&clean),
        "divergence must cut tracking: {} vs clean {}",
        tracked(&faulted),
        tracked(&clean)
    );
}

/// MARLIN re-detects early when its tracker diverges: with the policy on,
/// detection cycles come at least as often as with it off, and divergence
/// is recorded either way.
#[test]
fn marlin_divergence_forces_early_redetection() {
    let profile = FaultProfile {
        seed: 29,
        tracker_divergence_prob: 1.0,
        ..FaultProfile::none()
    };
    // Long tracking windows so divergence, not the velocity trigger,
    // decides when to re-detect.
    let marlin = MarlinConfig {
        trigger_velocity: 1e9,
        max_cycle_frames: 60,
    };
    let c = clip(150);
    let run = |redetect: bool| {
        let mut config = cfg(profile.clone());
        config.degradation = DegradationPolicy {
            redetect_on_divergence: redetect,
            ..DegradationPolicy::default()
        };
        MarlinPipeline::new(det(), ModelSetting::Yolo320, config, marlin.clone()).process(&c)
    };
    let with_policy = run(true);
    let without = run(false);
    assert_covered(&with_policy, 150);
    assert!(
        with_policy.diverged_cycle_count() > 0,
        "forced divergence must be recorded"
    );
    assert!(
        with_policy.cycles.len() > without.cycles.len(),
        "early re-detection must shorten cycles: {} vs {}",
        with_policy.cycles.len(),
        without.cycles.len()
    );
}

// ---- Determinism & composition -------------------------------------------

/// The whole fault layer is replayable: identical configuration produces
/// identical traces — down to the serialized bytes — under the all-faults
/// stress profile, for every pipeline.
#[test]
fn stress_runs_are_byte_reproducible() {
    let c = clip(90);
    let mk = |label: &str| -> (String, ProcessingTrace) {
        let config = cfg(FaultProfile::stress(77));
        let mut p: Box<dyn VideoProcessor> = match label {
            "mpdt" => Box::new(MpdtPipeline::new(
                det(),
                SettingPolicy::Fixed(ModelSetting::Yolo512),
                config,
            )),
            "marlin" => Box::new(MarlinPipeline::new(
                det(),
                ModelSetting::Yolo512,
                config,
                MarlinConfig::default(),
            )),
            "detector-only" => Box::new(DetectorOnlyPipeline::new(
                det(),
                ModelSetting::Yolo512,
                config,
            )),
            "cascade" => Box::new(CascadePipeline::new(
                det(),
                ModelSetting::Yolo512,
                config,
                CascadeConfig::default(),
            )),
            "ctd" => Box::new(CtdPipeline::new(
                det(),
                ModelSetting::Yolo512,
                config,
                CtdConfig::default(),
            )),
            _ => Box::new(ContinuousPipeline::new(
                det(),
                ModelSetting::Yolo320,
                config,
            )),
        };
        let trace = p.process(&c);
        (trace_to_json(&trace, None), trace)
    };
    for label in [
        "mpdt",
        "marlin",
        "detector-only",
        "continuous",
        "cascade",
        "ctd",
    ] {
        let (json_a, trace_a) = mk(label);
        let (json_b, trace_b) = mk(label);
        assert_eq!(trace_a, trace_b, "{label}: traces must be identical");
        assert_eq!(json_a, json_b, "{label}: serialized bytes must match");
        assert_covered(&trace_a, 90);
        assert!(
            trace_a.fault_count() > 0,
            "{label}: stress must inject faults"
        );
    }
}

/// The quiet plan is bit-identical to the pre-fault behavior: a default
/// config and an explicit no-fault config produce equal traces.
#[test]
fn quiet_plan_is_the_happy_path() {
    let c = clip(90);
    let run = |config: PipelineConfig| {
        MpdtPipeline::new(det(), SettingPolicy::Fixed(ModelSetting::Yolo512), config).process(&c)
    };
    let default = run(PipelineConfig::default());
    let explicit = run(cfg(FaultProfile::none()));
    assert_eq!(default, explicit);
    assert_eq!(default.fault_count(), 0);
    assert_eq!(default.degraded_cycle_count(), 0);
    assert_eq!(default.diverged_cycle_count(), 0);
    assert_eq!(default.source_fractions().dropped, 0.0);
}
