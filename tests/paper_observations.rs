//! The four observations of the paper's §III, verified against this
//! reproduction end-to-end. These are the empirical premises the whole
//! AdaVP design rests on; if any of them stopped holding in the simulation,
//! the evaluation figures would be meaningless.

use adavp::core::latency::LatencyModel;
use adavp::core::tracker::{ObjectTracker, TrackerConfig};
use adavp::detector::{Detector, DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::metrics::f1::{evaluate_frame, LabeledBox};
use adavp::metrics::matching::Matcher;
use adavp::video::clip::VideoClip;
use adavp::video::scenario::Scenario;

fn clip(scenario: Scenario, seed: u64, frames: u32, fast: bool) -> VideoClip {
    let mut spec = scenario.spec();
    spec.width = 320;
    spec.height = 180;
    spec.size_range = (22.0, 40.0);
    if fast {
        spec.speed_range = (220.0, 420.0);
        spec.spawn_rate_hz = 3.0;
        spec.max_objects = 12;
        spec.activity_depth = 0.0;
    }
    VideoClip::generate("obs", &spec, seed, frames)
}

/// Observation 1: even the lightest full-YOLO setting cannot keep up with a
/// 30 FPS camera — detection latency exceeds the 33 ms frame interval.
#[test]
fn observation_1_detection_slower_than_camera() {
    let c = clip(Scenario::Highway, 1, 3, false);
    let mut det = SimulatedDetector::new(DetectorConfig::default());
    for setting in ModelSetting::ADAPTIVE {
        let r = det.detect(c.frame(0), setting);
        assert!(
            r.latency_ms > 33.4,
            "{setting} at {} ms would keep up with the camera",
            r.latency_ms
        );
    }
}

/// Observation 2: larger frame size → higher accuracy and longer latency.
#[test]
fn observation_2_accuracy_latency_tradeoff() {
    let c = clip(Scenario::Highway, 2, 40, false);
    let oracle =
        adavp::core::eval::ground_truth_boxes(&c, adavp::core::eval::GroundTruthMode::default());
    let mut det = SimulatedDetector::new(DetectorConfig::default());
    let mut prev: Option<(f64, f64)> = None; // (latency, f1)
    for setting in ModelSetting::ADAPTIVE {
        let mut lat = 0.0;
        let mut f1 = 0.0;
        for frame in &c {
            let r = det.detect(frame, setting);
            lat += r.latency_ms;
            let boxes: Vec<LabeledBox> = r
                .detections
                .iter()
                .map(|d| LabeledBox::new(d.class, d.bbox))
                .collect();
            f1 += evaluate_frame(
                &boxes,
                &oracle[frame.index as usize],
                0.5,
                Matcher::Hungarian,
            )
            .f1;
        }
        lat /= c.len() as f64;
        f1 /= c.len() as f64;
        if let Some((plat, pf1)) = prev {
            assert!(lat > plat, "{setting}: latency must grow with input size");
            assert!(
                f1 > pf1 - 0.02,
                "{setting}: accuracy must not regress with input size ({pf1:.3} -> {f1:.3})"
            );
        }
        prev = Some((lat, f1));
    }
}

/// Observation 3: tracking accuracy decays faster when content changes
/// faster.
#[test]
fn observation_3_decay_depends_on_content_rate() {
    let decay_after = |fast: bool, seed: u64, frames: usize| -> f64 {
        let c = clip(Scenario::Highway, seed, frames as u32 + 1, fast);
        let oracle = adavp::core::eval::ground_truth_boxes(
            &c,
            adavp::core::eval::GroundTruthMode::default(),
        );
        let mut det = SimulatedDetector::new(DetectorConfig::default());
        let d0 = det.detect(c.frame(0), ModelSetting::Yolo608);
        let mut tracker = ObjectTracker::new(TrackerConfig::default());
        let pairs: Vec<_> = d0.detections.iter().map(|d| (d.class, d.bbox)).collect();
        tracker.reset(&c.frame(0).image, &pairs);
        let mut last = 0.0;
        #[allow(clippy::needless_range_loop)]
        for i in 1..=frames {
            tracker.step(&c.frame(i).image, 1);
            let boxes: Vec<LabeledBox> = tracker
                .current_boxes()
                .into_iter()
                .map(|(cl, b)| LabeledBox::new(cl, b))
                .collect();
            last = evaluate_frame(&boxes, &oracle[i], 0.5, Matcher::Hungarian).f1;
        }
        last
    };
    // Average a few seeds to keep the assertion robust.
    let mut fast_sum = 0.0;
    let mut slow_sum = 0.0;
    for seed in 0..3 {
        fast_sum += decay_after(true, 100 + seed, 20);
        slow_sum += decay_after(false, 200 + seed, 20);
    }
    assert!(
        fast_sum < slow_sum,
        "after 20 frames, fast content ({fast_sum:.2}) must decay below slow ({slow_sum:.2})"
    );
}

/// Observation 4: tracking + overlay of one frame exceeds the frame
/// interval, so frames must be skipped.
#[test]
fn observation_4_tracking_cannot_keep_up() {
    let lat = LatencyModel::default();
    for objects in 1..=10 {
        assert!(lat.tracked_frame_ms(objects) > 1000.0 / 30.0);
    }
}
