//! Property-based tests (proptest) on the core data structures and on
//! whole-pipeline invariants under randomized scenario parameters.

use adavp::core::latency::{region_scaled_ms, REGION_LATENCY_FLOOR};
use adavp::core::pipeline::{
    CascadeConfig, CascadePipeline, ConfidenceDecay, CtdConfig, CtdPipeline, DetectorOnlyPipeline,
    MarlinConfig, MarlinPipeline, MpdtPipeline, PipelineConfig, SettingPolicy, VideoProcessor,
};
use adavp::core::tracker::FrameSelector;
use adavp::detector::{Detector, DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::metrics::f1::{evaluate_frame, LabeledBox};
use adavp::metrics::matching::{match_boxes, Matcher};
use adavp::sim::fault::{FaultPlan, FaultProfile};
use adavp::video::clip::VideoClip;
use adavp::video::object::ObjectClass;
use adavp::video::scenario::{CameraMotion, Scenario};
use adavp::vision::geometry::{BoundingBox, Point2, Vec2};
use proptest::prelude::*;

fn arb_box() -> impl Strategy<Value = BoundingBox> {
    (0.0f32..300.0, 0.0f32..300.0, 1.0f32..120.0, 1.0f32..120.0)
        .prop_map(|(l, t, w, h)| BoundingBox::new(l, t, w, h))
}

fn arb_class() -> impl Strategy<Value = ObjectClass> {
    prop::sample::select(ObjectClass::ALL.to_vec())
}

fn arb_fault_profile() -> impl Strategy<Value = FaultProfile> {
    (
        0u64..10_000,
        0.0f64..0.6,
        1.0f64..3.0,
        0.0f64..4.0,
        0.0f64..0.5,
        0.0f64..0.4,
        0.0f64..0.6,
        prop::option::of((100.0f64..800.0, 20.0f64..200.0)),
    )
        .prop_map(
            |(seed, spike_p, mult_lo, mult_extra, fail_p, drop_p, div_p, contention)| {
                let (period, busy) = contention.unwrap_or((0.0, 0.0));
                FaultProfile {
                    seed,
                    latency_spike_prob: spike_p,
                    latency_spike_mult: (mult_lo, mult_lo + mult_extra),
                    detector_failure_prob: fail_p,
                    frame_drop_prob: drop_p,
                    tracker_divergence_prob: div_p,
                    contention_period_ms: period,
                    contention_busy_ms: busy,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Geometry -----------------------------------------------------

    #[test]
    fn iou_is_symmetric_and_bounded(a in arb_box(), b in arb_box()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
    }

    #[test]
    fn iou_with_self_is_one(a in arb_box()) {
        // f32 coordinate arithmetic: (left + width) - left can deviate from
        // width by ~1e-4 relative at coordinates around 300.
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn translation_preserves_area_and_iou_decreases(
        a in arb_box(),
        dx in -50.0f32..50.0,
        dy in -50.0f32..50.0,
    ) {
        let t = a.translated(Vec2::new(dx, dy));
        prop_assert!((t.area() - a.area()).abs() < 1e-3);
        // Moving a box away from itself can never increase IoU above 1.
        prop_assert!(a.iou(&t) <= 1.0 + 1e-4);
        // Zero translation keeps IoU at 1 (up to f32 precision).
        let z = a.translated(Vec2::ZERO);
        prop_assert!((a.iou(&z) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn intersection_is_contained(a in arb_box(), b in arb_box()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.area() <= a.area() + 1e-3);
            prop_assert!(i.area() <= b.area() + 1e-3);
            prop_assert!(i.left >= a.left - 1e-4 && i.left >= b.left - 1e-4);
        }
    }

    #[test]
    fn clipping_never_grows(a in arb_box(), w in 10.0f32..400.0, h in 10.0f32..400.0) {
        if let Some(c) = a.clipped(w, h) {
            prop_assert!(c.area() <= a.area() + 1e-3);
            prop_assert!(c.left >= 0.0 && c.top >= 0.0);
            prop_assert!(c.right() <= w + 1e-4 && c.bottom() <= h + 1e-4);
        }
    }

    #[test]
    fn point_distance_triangle_inequality(
        ax in -100.0f32..100.0, ay in -100.0f32..100.0,
        bx in -100.0f32..100.0, by in -100.0f32..100.0,
        cx in -100.0f32..100.0, cy in -100.0f32..100.0,
    ) {
        let a = Point2::new(ax, ay);
        let b = Point2::new(bx, by);
        let c = Point2::new(cx, cy);
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-3);
    }

    // ---- Matching & scoring -------------------------------------------

    #[test]
    fn matching_partitions_inputs(
        preds in prop::collection::vec((arb_class(), arb_box()), 0..8),
        gts in prop::collection::vec((arb_class(), arb_box()), 0..8),
    ) {
        for matcher in [Matcher::Greedy, Matcher::Hungarian] {
            let out = match_boxes(&preds, &gts, 0.3, matcher);
            prop_assert_eq!(out.matches.len() + out.unmatched_predictions.len(), preds.len());
            prop_assert_eq!(out.matches.len() + out.unmatched_ground_truth.len(), gts.len());
            // No index appears twice.
            let mut ps: Vec<usize> = out.matches.iter().map(|m| m.0).collect();
            ps.sort_unstable();
            ps.dedup();
            prop_assert_eq!(ps.len(), out.matches.len());
            for (pi, gi, iou) in &out.matches {
                prop_assert!(*iou >= 0.3);
                prop_assert_eq!(preds[*pi].0, gts[*gi].0);
            }
        }
    }

    #[test]
    fn hungarian_total_iou_at_least_greedy(
        preds in prop::collection::vec((Just(ObjectClass::Car), arb_box()), 0..7),
        gts in prop::collection::vec((Just(ObjectClass::Car), arb_box()), 0..7),
    ) {
        // The Hungarian assignment maximizes total IoU over ALL one-to-one
        // matchings, so at a (near-)zero threshold its total dominates any
        // greedy matching's total. (At a nonzero threshold the property does
        // not hold in general: the unconstrained optimum may route through
        // sub-threshold pairs that the filter then drops.)
        let g = match_boxes(&preds, &gts, 0.1, Matcher::Greedy);
        let h = match_boxes(&preds, &gts, 1e-6, Matcher::Hungarian);
        let sum = |o: &adavp::metrics::matching::MatchOutcome| -> f32 {
            o.matches.iter().map(|m| m.2).sum()
        };
        prop_assert!(sum(&h) >= sum(&g) - 1e-4);
    }

    #[test]
    fn f1_bounded_and_perfect_on_echo(
        gts in prop::collection::vec((arb_class(), arb_box()), 0..8),
    ) {
        let labeled: Vec<LabeledBox> = gts.iter().map(|(c, b)| LabeledBox::new(*c, *b)).collect();
        let s = evaluate_frame(&labeled, &labeled, 0.5, Matcher::Hungarian);
        prop_assert_eq!(s.f1, 1.0);
        let empty = evaluate_frame(&[], &labeled, 0.5, Matcher::Hungarian);
        prop_assert!(empty.f1 <= 1.0 && empty.f1 >= 0.0);
    }

    // ---- Frame selector --------------------------------------------------

    // ---- Region-restricted latency ------------------------------------

    #[test]
    fn region_latency_never_exceeds_full_frame(
        full in 0.0f64..5000.0,
        frac in -1.0f64..2.0,
    ) {
        let r = region_scaled_ms(full, frac);
        prop_assert!(r >= 0.0);
        prop_assert!(r <= full + 1e-9, "region {r} > full {full}");
        // The floor: even a vanishing region pays the fixed backbone cost.
        prop_assert!(r >= REGION_LATENCY_FLOOR * full - 1e-9);
        // Monotone in the fraction.
        let bigger = region_scaled_ms(full, frac.max(0.0) + 0.1);
        prop_assert!(bigger + 1e-9 >= r);
    }

    // ---- CTD confidence decay -----------------------------------------

    #[test]
    fn ctd_decay_is_monotone_for_any_step_sequence(
        calib in prop::collection::vec(0.0f32..1.0, 0..6),
        steps in prop::collection::vec(
            (prop::option::of(-5.0f64..50.0), 0usize..200, 0usize..200),
            1..60,
        ),
    ) {
        let cfg = CtdConfig::default();
        let mut d = ConfidenceDecay::new();
        d.reset(&calib);
        let mut prev = d.value();
        prop_assert!((0.0..=1.0).contains(&prev));
        for (velocity, tracked, lost) in steps {
            let v = d.step(&cfg, velocity, tracked, lost);
            prop_assert!(v <= prev + 1e-12, "decay increased: {v} > {prev}");
            prop_assert!((0.0..=1.0).contains(&v));
            prev = v;
        }
    }

    #[test]
    fn selector_plan_valid_for_any_fraction(p in 0.01f64..1.5, f in 1usize..200) {
        let s = FrameSelector::new(p);
        let plan = s.plan(f);
        prop_assert!(!plan.is_empty());
        prop_assert!(*plan.last().unwrap() == f - 1);
        for w in plan.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(plan.len() <= f);
    }
}

proptest! {
    // Pipeline-level properties are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pipeline_covers_all_frames_for_random_scenarios(
        scenario_idx in 0usize..14,
        seed in 0u64..1000,
        frames in 40u32..90,
        setting_idx in 0usize..4,
    ) {
        let mut spec = Scenario::ALL[scenario_idx].spec();
        spec.width = 240;
        spec.height = 140;
        spec.size_range = (18.0, 32.0);
        let clip = VideoClip::generate("prop", &spec, seed, frames);
        let mut p = MpdtPipeline::new(
            SimulatedDetector::new(DetectorConfig::default().with_seed(seed)),
            SettingPolicy::Fixed(ModelSetting::ADAPTIVE[setting_idx]),
            PipelineConfig::default(),
        );
        let trace = p.process(&clip);
        prop_assert_eq!(trace.outputs.len(), frames as usize);
        // Frame outputs are index-aligned and cycles are time-ordered.
        for (i, o) in trace.outputs.iter().enumerate() {
            prop_assert_eq!(o.frame_index as usize, i);
        }
        for w in trace.cycles.windows(2) {
            prop_assert!(w[0].end_ms <= w[1].end_ms + 1e-9);
            prop_assert!(w[0].detected_frame < w[1].detected_frame);
        }
        // Detection never outpaces the camera: cycle end >= frame arrival.
        for cy in &trace.cycles {
            let arrival = cy.detected_frame as f64 * clip.frame_interval_ms();
            prop_assert!(cy.end_ms >= arrival);
        }
    }

    // ---- Fault injection ---------------------------------------------

    #[test]
    fn pipelines_degrade_gracefully_under_any_fault_plan(
        profile in arb_fault_profile(),
        pipeline_idx in 0usize..5,
        seed in 0u64..500,
        frames in 40u32..80,
    ) {
        let mut spec = Scenario::Highway.spec();
        spec.width = 240;
        spec.height = 140;
        spec.size_range = (18.0, 32.0);
        let clip = VideoClip::generate("prop-fault", &spec, seed, frames);
        let plan = FaultPlan::new(profile);
        // The plan's own queries are always finite and bounded.
        for c in 0..64u64 {
            let m = plan.latency_multiplier(c);
            prop_assert!(m.is_finite() && m >= 1.0);
            if let Some(f) = plan.tracker_divergence(c) {
                prop_assert!((0.05..=0.95).contains(&f));
            }
        }
        let cfg = PipelineConfig {
            faults: plan,
            ..PipelineConfig::default()
        };
        let det = SimulatedDetector::new(DetectorConfig::default().with_seed(seed));
        let mut p: Box<dyn VideoProcessor> = match pipeline_idx {
            0 => Box::new(MpdtPipeline::new(
                det,
                SettingPolicy::Fixed(ModelSetting::Yolo512),
                cfg,
            )),
            1 => Box::new(MarlinPipeline::new(
                det,
                ModelSetting::Yolo512,
                cfg,
                MarlinConfig::default(),
            )),
            2 => Box::new(CascadePipeline::new(
                det,
                ModelSetting::Yolo512,
                cfg,
                CascadeConfig::default(),
            )),
            3 => Box::new(CtdPipeline::new(
                det,
                ModelSetting::Yolo512,
                cfg,
                CtdConfig::default(),
            )),
            _ => Box::new(DetectorOnlyPipeline::new(det, ModelSetting::Yolo512, cfg)),
        };
        let trace = p.process(&clip);
        // Exactly one output per input frame, index-aligned, whatever the
        // fault plan did.
        prop_assert_eq!(trace.outputs.len(), frames as usize);
        for (i, o) in trace.outputs.iter().enumerate() {
            prop_assert_eq!(o.frame_index as usize, i);
            prop_assert!(o.display_ms.is_finite());
            // Per-box confidences stay aligned and bounded whatever the
            // fault plan did to the detections that produced them.
            prop_assert_eq!(o.confidences.len(), o.boxes.len());
            for &c in &o.confidences {
                prop_assert!((0.0..=1.0).contains(&c), "confidence {c}");
            }
        }
        // Source fractions partition the frames.
        let f = trace.source_fractions();
        prop_assert!((f.sum() - 1.0).abs() < 1e-9, "fractions sum {}", f.sum());
        // The realtime factor survives injection (timeouts are bounded, so
        // processing time stays finite).
        prop_assert!(trace.latency_multiplier(&clip).is_finite());
        // Fault accounting is consistent.
        prop_assert!(trace.degraded_cycle_count() <= trace.fault_count());
        prop_assert!(trace.fault_count() <= trace.cycles.len());
    }

    #[test]
    fn detector_recall_monotone_in_visibility(
        seed in 0u64..100,
    ) {
        // The same scene detected at 608 finds at least as many objects as
        // tiny-320, averaged over frames.
        let mut spec = Scenario::CityStreet.spec();
        spec.width = 240;
        spec.height = 140;
        spec.camera = CameraMotion::Static;
        let clip = VideoClip::generate("prop-det", &spec, seed, 12);
        let mut det = SimulatedDetector::new(DetectorConfig::default().with_seed(seed));
        let count = |det: &mut SimulatedDetector, s: ModelSetting| -> usize {
            clip.iter().map(|f| det.detect(f, s).detections.len()).sum()
        };
        let tiny = count(&mut det, ModelSetting::Tiny320);
        let big = count(&mut det, ModelSetting::Yolo608);
        prop_assert!(big + 2 >= tiny, "tiny {tiny} vs 608 {big}");
    }
}
