//! Conformance suite for the two confidence-driven detection schemes
//! (DESIGN.md §16): the cascaded proposal/refinement pipeline and the
//! confidence-triggered detection (CTD) pipeline.
//!
//! The pins here are the scheme *semantics*, through the public API only:
//! the cascade's gate opens iff a proposal demands the full detector, CTD
//! re-detects on the exact step its decayed confidence crosses the
//! threshold, and both schemes are pure functions of their configuration
//! down to the serialized trace bytes.

use adavp::core::export::trace_to_json;
use adavp::core::pipeline::{
    CascadeConfig, CascadePipeline, CtdConfig, CtdPipeline, FrameSource, PipelineConfig,
    ProcessingTrace, VideoProcessor,
};
use adavp::detector::{DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::scenario::Scenario;

fn clip(scenario: Scenario, seed: u64, frames: u32) -> VideoClip {
    let mut spec = scenario.spec();
    spec.width = 240;
    spec.height = 140;
    spec.size_range = (20.0, 36.0);
    VideoClip::generate("scheme-conformance", &spec, seed, frames)
}

fn det() -> SimulatedDetector {
    SimulatedDetector::new(DetectorConfig::default())
}

fn cascade(cfg: CascadeConfig) -> CascadePipeline<SimulatedDetector> {
    CascadePipeline::new(
        det(),
        ModelSetting::Yolo512,
        PipelineConfig::default(),
        cfg,
    )
}

fn assert_covered(trace: &ProcessingTrace, frames: usize) {
    assert_eq!(trace.outputs.len(), frames);
    for (i, o) in trace.outputs.iter().enumerate() {
        assert_eq!(o.frame_index as usize, i, "outputs must be index-aligned");
        assert_eq!(
            o.boxes.len(),
            o.confidences.len(),
            "confidences must align with boxes"
        );
    }
}

// ---- Cascade gating --------------------------------------------------------

/// With the gate threshold above 1.0 every proposal is under-confident, so
/// the iff becomes externally observable: a cycle refines (records the full
/// setting) exactly when the proposal pass found anything at all — a
/// Tiny320 cycle means the proposal list, and therefore the published
/// output, was empty.
#[test]
fn cascade_always_under_confident_refines_iff_proposals_exist() {
    let c = clip(Scenario::Highway, 41, 90);
    let cfg = CascadeConfig {
        confidence_threshold: 1.1,
        ..CascadeConfig::default()
    };
    let trace = cascade(cfg).process(&c);
    assert_covered(&trace, 90);
    assert!(
        trace
            .cycles
            .iter()
            .any(|cy| cy.setting == ModelSetting::Yolo512),
        "highway proposals must open the gate somewhere"
    );
    for cy in &trace.cycles {
        let out = &trace.outputs[cy.detected_frame as usize];
        match cy.setting {
            // Gate closed ⇔ nothing proposed ⇔ nothing published.
            ModelSetting::Tiny320 => assert!(
                out.boxes.is_empty(),
                "cycle {}: tiny cycle with published boxes under a >1.0 gate",
                cy.index
            ),
            ModelSetting::Yolo512 => {}
            other => panic!("cycle {}: unexpected setting {other}", cy.index),
        }
        if !out.boxes.is_empty() {
            assert_eq!(
                cy.setting,
                ModelSetting::Yolo512,
                "cycle {}: published boxes demand a refinement under a >1.0 gate",
                cy.index
            );
        }
    }
}

/// With the confidence gate disabled (threshold 0.0) and the novelty bar at
/// IoU >= 0.0 — which any box pair satisfies — only an *empty* published
/// set can make a proposal novel. So refinements beyond the bootstrap cycle
/// happen exactly when the previous cycle published nothing.
#[test]
fn cascade_confident_proposals_keep_the_gate_closed() {
    let c = clip(Scenario::Highway, 41, 90);
    let cfg = CascadeConfig {
        confidence_threshold: 0.0,
        novel_iou: 0.0,
        ..CascadeConfig::default()
    };
    let trace = cascade(cfg).process(&c);
    assert_covered(&trace, 90);
    for w in trace.cycles.windows(2) {
        let prev_out = &trace.outputs[w[0].detected_frame as usize];
        if w[1].setting == ModelSetting::Yolo512 {
            assert!(
                prev_out.boxes.is_empty(),
                "cycle {}: refined although cycle {} published {} boxes",
                w[1].index,
                w[0].index,
                prev_out.boxes.len()
            );
        } else if prev_out.boxes.is_empty() {
            // Gate stayed closed with nothing published: the proposal pass
            // itself must have been empty, so nothing is published now.
            assert!(
                trace.outputs[w[1].detected_frame as usize].boxes.is_empty(),
                "cycle {}: unrefined novel proposals",
                w[1].index
            );
        }
    }
}

/// Gate-closed cycles cost one tiny pass; refinements never cost more than
/// a tiny pass plus a full-frame detection. Region restriction can only
/// shrink the second term.
#[test]
fn cascade_cycle_costs_are_bounded_by_their_passes() {
    let c = clip(Scenario::Highway, 41, 120);
    let trace = cascade(CascadeConfig::default()).process(&c);
    let tiny = ModelSetting::Tiny320.base_latency_ms();
    let full = ModelSetting::Yolo512.base_latency_ms();
    for cy in &trace.cycles {
        let ms = cy.end_ms - cy.start_ms;
        match cy.setting {
            ModelSetting::Tiny320 => assert!(
                ms < 0.5 * full,
                "cycle {}: gate-closed cycle took {ms:.1} ms",
                cy.index
            ),
            _ => assert!(
                ms < 1.5 * (tiny + full),
                "cycle {}: refinement took {ms:.1} ms, more than both passes",
                cy.index
            ),
        }
    }
}

// ---- CTD trigger timing ----------------------------------------------------

/// With both decay penalties zeroed the trigger time is closed-form: a
/// cycle calibrated to mean confidence c₀ tracks exactly the smallest
/// k ≥ 1 with c₀·dᵏ < θ steps before re-detecting (the tracking loop
/// always takes one step before consulting the trigger). Every non-final
/// cycle of a static scene must hit that k on the nose.
#[test]
fn ctd_triggers_on_the_exact_predicted_step() {
    let ctd_cfg = CtdConfig {
        base_decay: 0.9,
        velocity_penalty: 0.0,
        loss_penalty: 0.0,
        threshold: 0.2,
        max_cycle_frames: 10_000,
    };
    let c = clip(Scenario::MeetingRoom, 11, 160);
    let mut p = CtdPipeline::new(det(), ModelSetting::Yolo512, PipelineConfig::default(), ctd_cfg);
    let trace = p.process(&c);
    assert_covered(&trace, 160);
    assert!(trace.cycles.len() >= 2, "need at least one full cycle");
    for cy in &trace.cycles[..trace.cycles.len() - 1] {
        let out = &trace.outputs[cy.detected_frame as usize];
        assert_eq!(out.source, FrameSource::Detected);
        let c0 = if out.confidences.is_empty() {
            1.0
        } else {
            out.confidences.iter().map(|&x| x as f64).sum::<f64>() / out.confidences.len() as f64
        };
        let mut k = 0u32;
        let mut v = c0;
        while v >= 0.2 {
            v *= 0.9;
            k += 1;
            assert!(k < 1000, "closed form never crossed the threshold");
        }
        assert_eq!(
            cy.tracked,
            k.max(1),
            "cycle {}: calibrated at {c0:.4}, predicted {k} tracking steps",
            cy.index
        );
    }
}

/// While the confidence sits above the threshold the detector must stay
/// idle: a confident calibration buys a strictly positive tracking phase,
/// so consecutive detections are never back-to-back.
#[test]
fn ctd_never_redetects_while_confident() {
    let c = clip(Scenario::MeetingRoom, 11, 160);
    let mut p = CtdPipeline::new(
        det(),
        ModelSetting::Yolo512,
        PipelineConfig::default(),
        CtdConfig::default(),
    );
    let trace = p.process(&c);
    assert_covered(&trace, 160);
    for cy in &trace.cycles[..trace.cycles.len().saturating_sub(1)] {
        assert!(
            cy.tracked >= 1,
            "cycle {}: re-detected without a single tracking step",
            cy.index
        );
    }
    // The calibrated confidence of a 512 detection on a static scene sits
    // well above the default threshold, so cycles must be long: strictly
    // fewer detections than a quarter of the frames.
    assert!(
        trace.cycles.len() * 4 < 160,
        "{} cycles over 160 frames is not confidence-triggered behavior",
        trace.cycles.len()
    );
}

// ---- Byte reproducibility --------------------------------------------------

/// Both schemes are pure functions of (clip, config): fresh pipeline
/// instances over the same inputs serialize to identical bytes.
#[test]
fn both_schemes_are_byte_reproducible() {
    let c = clip(Scenario::Highway, 41, 90);
    let run_cascade = || {
        let trace = cascade(CascadeConfig::default()).process(&c);
        (trace_to_json(&trace, None), trace)
    };
    let run_ctd = || {
        let mut p = CtdPipeline::new(
            det(),
            ModelSetting::Yolo512,
            PipelineConfig::default(),
            CtdConfig::default(),
        );
        let trace = p.process(&c);
        (trace_to_json(&trace, None), trace)
    };
    let (ja, ta) = run_cascade();
    let (jb, tb) = run_cascade();
    assert_eq!(ta, tb, "cascade traces must be identical");
    assert_eq!(ja, jb, "cascade bytes must be identical");
    let (ja, ta) = run_ctd();
    let (jb, tb) = run_ctd();
    assert_eq!(ta, tb, "CTD traces must be identical");
    assert_eq!(ja, jb, "CTD bytes must be identical");
}
