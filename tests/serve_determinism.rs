//! Fleet-serving determinism and behavior pins (DESIGN.md §15).
//!
//! The load-bearing guarantee: a serve sweep is a pure function of its
//! configuration, so running it on 1 worker or 4 must produce byte-identical
//! CSV/JSON. Alongside that, sharp pins on the three serving mechanisms —
//! batch formation (close on size vs window deadline), admission rejection,
//! and backpressure step-down — through the public API.

use adavp::core::metrics::{json_snapshot, prometheus_text, MetricsConfig, SloTracker};
use adavp::core::serve::stream::{DetectionRequest, SloClass};
use adavp::core::serve::{
    run_fleet, run_sweep, run_sweep_with_metrics, sweep_csv, sweep_json, BatchConfig,
    BatchScheduler, ServeConfig, ServeScheme, SweepConfig,
};
use adavp::sim::{FaultPlan, FaultProfile, SimTime};
use adavp::vision::exec::Executor;

fn request(stream: usize, member_ms: f64) -> DetectionRequest {
    DetectionRequest {
        stream,
        cycle: 0,
        member_ms,
        failed: false,
        timed_out: false,
    }
}

#[test]
fn serve_sweep_bytes_identical_across_jobs() {
    let cfg = SweepConfig {
        stream_counts: vec![1, 8, 24],
        cycles: 8,
        ..SweepConfig::default()
    };
    let rows_1 = run_sweep(&cfg, &Executor::new(1));
    let rows_4 = run_sweep(&cfg, &Executor::new(4));
    assert_eq!(rows_1, rows_4, "sweep rows differ between --jobs 1 and 4");
    assert_eq!(
        sweep_csv(&rows_1).into_bytes(),
        sweep_csv(&rows_4).into_bytes(),
        "sweep CSV bytes differ between --jobs 1 and 4"
    );
    assert_eq!(
        sweep_json(&rows_1).into_bytes(),
        sweep_json(&rows_4).into_bytes(),
        "sweep JSON bytes differ between --jobs 1 and 4"
    );
    // And the sweep is reproducible run-to-run, not just across executors.
    let again = run_sweep(&cfg, &Executor::new(4));
    assert_eq!(rows_4, again);
}

/// The scheme axis rides the same byte-identity contract: a sweep over all
/// three serving schemes renders identical CSV/JSON for 1 worker and 4,
/// every scheme appears in the grid, and the schemes genuinely differ
/// (otherwise the axis pins nothing).
#[test]
fn scheme_axis_is_deterministic_and_distinct() {
    let cfg = SweepConfig {
        stream_counts: vec![4, 12],
        cycles: 6,
        schemes: vec![ServeScheme::Mpdt, ServeScheme::Cascade, ServeScheme::Ctd],
        ..SweepConfig::default()
    };
    let rows_1 = run_sweep(&cfg, &Executor::new(1));
    let rows_4 = run_sweep(&cfg, &Executor::new(4));
    assert_eq!(rows_1, rows_4, "scheme sweep rows differ across jobs");
    assert_eq!(
        sweep_csv(&rows_1).into_bytes(),
        sweep_csv(&rows_4).into_bytes(),
        "scheme sweep CSV bytes differ across jobs"
    );
    assert_eq!(
        sweep_json(&rows_1).into_bytes(),
        sweep_json(&rows_4).into_bytes(),
        "scheme sweep JSON bytes differ across jobs"
    );
    for scheme in ServeScheme::ALL {
        assert!(
            rows_1.iter().any(|r| r.scheme == scheme.label()),
            "scheme {} missing from the grid",
            scheme.label()
        );
    }
    // Schemes must change the outcome, not just the label: on the
    // fault-free profile the cascade's gated refinement and CTD's longer
    // cycles shift throughput relative to MPDT.
    let dps = |scheme: &str| -> Vec<f64> {
        rows_1
            .iter()
            .filter(|r| r.profile == "none" && r.scheme == scheme)
            .map(|r| r.throughput_dps)
            .collect()
    };
    assert_ne!(dps("mpdt"), dps("cascade"), "cascade behaves like mpdt");
    assert_ne!(dps("mpdt"), dps("ctd"), "ctd behaves like mpdt");
}

#[test]
fn batch_closes_on_size_before_the_window_deadline() {
    let cfg = BatchConfig {
        max_batch: 3,
        window_ms: 1000.0,
        ..BatchConfig::default()
    };
    let mut sched = BatchScheduler::new(cfg, &FaultPlan::none());
    let t = SimTime::from_ms(10.0);
    for i in 0..3 {
        assert!(sched.submit(t, request(i, 100.0)));
    }
    let opens = sched.drain_window_opens();
    assert_eq!(opens.len(), 1, "first member arms the window");
    assert_eq!(opens[0].deadline, SimTime::from_ms(1010.0));
    let dispatched = sched.drain_dispatched();
    assert_eq!(dispatched.len(), 1, "filling to max_batch dispatches");
    assert_eq!(dispatched[0].members.len(), 3);
    assert_eq!(sched.stats.closed_on_size, 1);
    // The stale window deadline firing later must be a no-op.
    let before = sched.stats.batches;
    sched.window_closed(opens[0].batch, SimTime::from_ms(1010.0));
    assert_eq!(sched.stats.batches, before);
    assert!(sched.drain_dispatched().is_empty());
}

#[test]
fn batch_closes_on_window_deadline_when_underfull() {
    let cfg = BatchConfig {
        max_batch: 8,
        window_ms: 50.0,
        ..BatchConfig::default()
    };
    let mut sched = BatchScheduler::new(cfg, &FaultPlan::none());
    assert!(sched.submit(SimTime::from_ms(5.0), request(0, 100.0)));
    assert!(sched.submit(SimTime::from_ms(20.0), request(1, 100.0)));
    let opens = sched.drain_window_opens();
    assert_eq!(opens.len(), 1, "only the first member arms a window");
    assert_eq!(opens[0].deadline, SimTime::from_ms(55.0));
    assert!(
        sched.drain_dispatched().is_empty(),
        "underfull batch must wait for its deadline"
    );
    sched.window_closed(opens[0].batch, opens[0].deadline);
    let dispatched = sched.drain_dispatched();
    assert_eq!(dispatched.len(), 1, "deadline flushes the partial batch");
    assert_eq!(dispatched[0].members.len(), 2);
    assert_eq!(sched.stats.closed_on_size, 0);
}

#[test]
fn admission_rejects_overload_and_keeps_gold() {
    let mut cfg = ServeConfig::default();
    cfg.streams = ServeConfig::synthetic_streams(240, 4, 11);
    cfg.batch.gpus = 2;
    let report = run_fleet(&cfg);
    assert!(report.admitted >= 1);
    assert!(
        report.admitted < report.requested,
        "240 streams cannot all fit on 2 GPUs (admitted {})",
        report.admitted
    );
    // Admission walks classes in priority order: Gold fills first.
    let gold = &report.classes[0];
    assert_eq!(gold.class, SloClass::Gold);
    assert!(gold.admitted > 0);
    assert!(gold.admitted >= report.classes[2].admitted);
    // Rejected streams did no work and recorded no samples.
    let rejected: Vec<_> = report.streams.iter().filter(|s| !s.admitted).collect();
    assert_eq!(rejected.len(), report.requested - report.admitted);
    assert!(rejected.iter().all(|s| s.cycles == 0 && s.frames == 0));
    // Admitted streams all finished their configured cycles.
    assert_eq!(report.cycles, report.admitted as u64 * 4);
}

#[test]
fn backpressure_sheds_and_steps_settings_down() {
    let mut cfg = ServeConfig::default();
    cfg.streams = ServeConfig::synthetic_streams(20, 3, 5);
    cfg.admission.enabled = false; // force overload through to the queue
    cfg.batch = BatchConfig {
        max_batch: 2,
        window_ms: 10.0,
        queue_capacity: 2,
        gpus: 1,
        ..BatchConfig::default()
    };
    let report = run_fleet(&cfg);
    assert!(report.shed > 0, "saturated queue must refuse submissions");
    assert!(
        report.switches > 0,
        "each refusal steps the stream's setting down"
    );
    // Shedding delays but never drops cycles: everyone still finishes.
    assert_eq!(report.cycles, 20 * 3);
    // The twin with ample queue capacity sheds nothing.
    let mut roomy = cfg.clone();
    roomy.batch.queue_capacity = 10_000;
    let report_roomy = run_fleet(&roomy);
    assert_eq!(report_roomy.shed, 0);
}

/// The metrics snapshot rides the same byte-identity contract as the sweep
/// renderers: Prometheus exposition and JSON snapshot bytes must be
/// identical across `--jobs 1` and `--jobs 4`, and the per-class SLO
/// error-budget burn rates must be present in both renderings.
#[test]
fn metrics_exposition_bytes_identical_across_jobs() {
    let cfg = SweepConfig {
        stream_counts: vec![2, 12],
        cycles: 6,
        metrics: MetricsConfig::enabled(),
        ..SweepConfig::default()
    };
    let (rows_1, reg_1) = run_sweep_with_metrics(&cfg, &Executor::new(1));
    let (rows_4, reg_4) = run_sweep_with_metrics(&cfg, &Executor::new(4));
    assert_eq!(rows_1, rows_4, "metrics sweep rows differ across jobs");
    assert_eq!(reg_1, reg_4, "merged registries differ across jobs");
    let prom_1 = prometheus_text(&reg_1);
    let prom_4 = prometheus_text(&reg_4);
    assert_eq!(
        prom_1.clone().into_bytes(),
        prom_4.into_bytes(),
        "Prometheus exposition bytes differ between --jobs 1 and 4"
    );
    let json_1 = json_snapshot(&reg_1);
    let json_4 = json_snapshot(&reg_4);
    assert_eq!(
        json_1.clone().into_bytes(),
        json_4.into_bytes(),
        "metrics JSON snapshot bytes differ between --jobs 1 and 4"
    );
    // The SLO error-budget burn rates are in both renderings, per class.
    for class in ["gold", "silver", "bronze"] {
        assert!(
            prom_1
                .lines()
                .any(|l| l.starts_with("adavp_slo_burn_rate{")
                    && l.contains(&format!("class=\"{class}\""))),
            "burn-rate gauge for {class} missing from exposition"
        );
        assert!(
            json_1.contains(&format!("\"class\": \"{class}\"")),
            "class {class} missing from JSON snapshot"
        );
    }
    assert!(json_1.contains("\"adavp_slo_burn_rate\""));
}

/// Conformance pin for the error-budget math: driving a tracker with a
/// synthetic deadline-miss schedule must reproduce the closed-form burn
/// rate `(misses / cycles) / budget` exactly, and the fleet's reported
/// per-class burn metric must equal the same closed form computed from its
/// own violation counts.
#[test]
fn error_budget_burn_matches_closed_form() {
    // Unit level: 7 misses in 40 cycles against a 5% budget.
    let mut tracker = SloTracker::new(0.05);
    for i in 0..40 {
        tracker.record(i % 6 == 0); // misses at 0,6,12,18,24,30,36 = 7
    }
    assert_eq!(tracker.cycles(), 40);
    assert_eq!(tracker.misses(), 7);
    assert_eq!(tracker.burn_rate(), (7.0 / 40.0) / 0.05);

    // Fleet level: the exported gauge equals the closed form derived from
    // the same report's violation counts.
    let mut cfg = ServeConfig::default();
    cfg.streams = ServeConfig::synthetic_streams(18, 5, 23);
    cfg.batch.gpus = 1; // scarce pool so some deadlines actually miss
    cfg.metrics = MetricsConfig::enabled();
    let report = run_fleet(&cfg);
    let metrics = report.metrics.as_ref().expect("metrics enabled");
    let prom = prometheus_text(&metrics.registry);
    for cr in &report.classes {
        if cr.cycles == 0 {
            continue;
        }
        let expected = (cr.violations as f64 / cr.cycles as f64) / cr.class.error_budget();
        let line = prom
            .lines()
            .find(|l| {
                l.starts_with("adavp_slo_burn_rate{")
                    && l.contains(&format!("class=\"{}\"", cr.class.label()))
            })
            .unwrap_or_else(|| panic!("no burn-rate line for {}", cr.class.label()));
        let value: f64 = line
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .expect("numeric gauge value");
        assert!(
            (value - expected).abs() < 1e-12,
            "{}: exported burn {value} != closed form {expected}",
            cr.class.label()
        );
    }
}

#[test]
fn fleet_brownout_drill_stays_deterministic() {
    let mut cfg = ServeConfig::default();
    cfg.streams = ServeConfig::synthetic_streams(24, 4, 9);
    cfg.faults = FaultProfile::brownout(3);
    let a = run_fleet(&cfg);
    let b = run_fleet(&cfg);
    assert_eq!(
        a, b,
        "faulted fleets must still be pure functions of config"
    );
    assert!(
        a.degraded + a.retries > 0,
        "brownout must actually degrade or retry something"
    );
}
