//! Integration tests for the tooling layers: trace analysis, JSON/CSV
//! export, PGM frame export — everything a user consumes downstream of a
//! pipeline run — plus the determinism lint run as a library, so plain
//! `cargo test` enforces the byte-reproducibility contract without ci.sh.

use adavp::core::analysis::{analyze, f1_by_source, switch_gaps, usage_shares};
use adavp::core::eval::{evaluate_on_clip, EvalConfig};
use adavp::core::export::{trace_to_json, write_frame_csv, write_trace_json};
use adavp::core::pipeline::{MpdtPipeline, PipelineConfig, SettingPolicy, VideoProcessor};
use adavp::core::telemetry::{self, chrome::chrome_trace_json, TelemetryConfig, Track};
use adavp::detector::{DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::export::{draw_boxes, export_clip, read_pgm, write_pgm};
use adavp::video::scenario::Scenario;
use std::fs;

fn run_once() -> (VideoClip, adavp::core::eval::VideoEvaluation) {
    let mut spec = Scenario::CityStreet.spec();
    spec.width = 240;
    spec.height = 140;
    spec.size_range = (20.0, 36.0);
    let clip = VideoClip::generate("tooling", &spec, 19, 120);
    let mut p = MpdtPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        SettingPolicy::Fixed(ModelSetting::Yolo512),
        PipelineConfig::default(),
    );
    let ev = evaluate_on_clip(&mut p, &clip, &EvalConfig::default());
    (clip, ev)
}

#[test]
fn analysis_of_real_trace_is_consistent() {
    let (_, ev) = run_once();
    let stats = analyze(&ev.trace);
    assert!(stats.cycles > 2);
    assert_eq!(stats.switches, 0, "fixed policy never switches");
    assert!(stats.mean_cycle_ms > 300.0 && stats.mean_cycle_ms < 500.0);
    assert!(stats.mean_buffered >= stats.mean_tracked);
    assert!(stats.tracking_completion() > 0.0 && stats.tracking_completion() <= 1.0);
    let src = stats.frame_sources;
    assert!((src.sum() - 1.0).abs() < 1e-9);
    assert_eq!(src.dropped, 0.0, "no faults configured");
    assert!(stats.usage[2] == stats.cycles, "all cycles at 512");

    // Per-source F1 split covers all frames.
    let (fd, ft, fh) = f1_by_source(&ev.trace, &ev.frame_f1);
    assert!(fd.is_some());
    assert!(ft.is_some() || fh.is_some());

    // No switches → no switch gaps.
    assert!(switch_gaps([&ev.trace]).is_empty());
    let shares = usage_shares([&ev.trace]);
    assert!((shares[2].1 - 1.0).abs() < 1e-9);
}

#[test]
fn json_export_of_real_trace_round_trips_key_fields() {
    let (_, ev) = run_once();
    let json = trace_to_json(&ev.trace, Some(&ev.frame_f1));
    assert!(json.contains("\"pipeline\": \"MPDT-YOLOv3-512\""));
    assert_eq!(
        json.matches("\"index\":").count(),
        ev.trace.outputs.len() + ev.trace.cycles.len()
    );
    // Balanced structure.
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let dir = std::env::temp_dir().join("adavp_tooling_test");
    let _ = fs::remove_dir_all(&dir);
    write_trace_json(&ev.trace, Some(&ev.frame_f1), &dir.join("trace.json")).unwrap();
    write_frame_csv(&ev.trace, &ev.frame_f1, &dir.join("frames.csv")).unwrap();
    let csv = fs::read_to_string(dir.join("frames.csv")).unwrap();
    assert_eq!(csv.lines().count(), ev.trace.outputs.len() + 1);
    let _ = fs::remove_dir_all(dir);
}

/// Minimal recursive-descent JSON well-formedness checker. No JSON parser
/// is available offline, and the Chrome exporter builds its document by
/// string concatenation — so validate it the hard way: the whole byte
/// stream must parse as exactly one JSON value.
mod json_check {
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = skip_ws(b, 0);
        i = value(b, i)?;
        i = skip_ws(b, i);
        if i == b.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at offset {i}"))
        }
    }

    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        i
    }

    fn value(b: &[u8], i: usize) -> Result<usize, String> {
        match b.get(i) {
            Some(b'{') => composite(b, i + 1, b'}', true),
            Some(b'[') => composite(b, i + 1, b']', false),
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            other => Err(format!("unexpected {other:?} at offset {i}")),
        }
    }

    fn composite(b: &[u8], mut i: usize, close: u8, keyed: bool) -> Result<usize, String> {
        i = skip_ws(b, i);
        if b.get(i) == Some(&close) {
            return Ok(i + 1);
        }
        loop {
            if keyed {
                i = string(b, skip_ws(b, i))?;
                i = skip_ws(b, i);
                if b.get(i) != Some(&b':') {
                    return Err(format!("expected ':' at offset {i}"));
                }
                i += 1;
            }
            i = value(b, skip_ws(b, i))?;
            i = skip_ws(b, i);
            match b.get(i) {
                Some(b',') => i += 1,
                Some(c) if *c == close => return Ok(i + 1),
                other => return Err(format!("expected ',' or close, got {other:?} at {i}")),
            }
        }
    }

    fn literal(b: &[u8], i: usize, word: &[u8]) -> Result<usize, String> {
        if b.get(i..i + word.len()) == Some(word) {
            Ok(i + word.len())
        } else {
            Err(format!("bad literal at offset {i}"))
        }
    }

    fn string(b: &[u8], i: usize) -> Result<usize, String> {
        if b.get(i) != Some(&b'"') {
            return Err(format!("expected string at offset {i}"));
        }
        let mut j = i + 1;
        while let Some(&c) = b.get(j) {
            match c {
                b'"' => return Ok(j + 1),
                b'\\' => match b.get(j + 1) {
                    Some(b'u') => {
                        let hex = b.get(j + 2..j + 6).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at offset {j}"));
                        }
                        j += 6;
                    }
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => j += 2,
                    other => return Err(format!("bad escape {other:?} at offset {j}")),
                },
                0x00..=0x1F => return Err(format!("raw control byte in string at {j}")),
                _ => j += 1,
            }
        }
        Err("unterminated string".into())
    }

    fn number(b: &[u8], mut i: usize) -> Result<usize, String> {
        let start = i;
        if b.get(i) == Some(&b'-') {
            i += 1;
        }
        let digits = |b: &[u8], mut i: usize| {
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            i
        };
        let d = digits(b, i);
        if d == i {
            return Err(format!("expected digits at offset {start}"));
        }
        i = d;
        if b.get(i) == Some(&b'.') {
            let f = digits(b, i + 1);
            if f == i + 1 {
                return Err(format!("bare decimal point at offset {i}"));
            }
            i = f;
        }
        if matches!(b.get(i), Some(b'e' | b'E')) {
            i += 1;
            if matches!(b.get(i), Some(b'+' | b'-')) {
                i += 1;
            }
            let e = digits(b, i);
            if e == i {
                return Err(format!("empty exponent at offset {i}"));
            }
            i = e;
        }
        Ok(i)
    }
}

/// The acceptance path behind `adavp trace --chrome`: an MPDT run with
/// telemetry enabled must export valid Chrome trace-event JSON carrying
/// all three resource tracks (GPU detector / CPU tracker / camera).
#[test]
fn chrome_trace_export_is_valid_json_with_three_tracks() {
    let mut spec = Scenario::CityStreet.spec();
    spec.width = 240;
    spec.height = 140;
    spec.size_range = (20.0, 36.0);
    let clip = VideoClip::generate("telemetry", &spec, 19, 120);
    let mut p = MpdtPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        SettingPolicy::Fixed(ModelSetting::Yolo512),
        PipelineConfig {
            telemetry: TelemetryConfig::enabled(),
            ..PipelineConfig::default()
        },
    );
    let trace = p.process(&clip);

    // All three modeled resources carry activity.
    assert!(trace.telemetry.spans_on(Track::Gpu).count() > 0);
    assert!(trace.telemetry.spans_on(Track::Cpu).count() > 0);
    assert!(
        trace
            .telemetry
            .events
            .iter()
            .any(|e| e.track == Track::Camera),
        "camera track recorded no events"
    );

    let json = chrome_trace_json(&[("mpdt-512 / telemetry", &trace.telemetry)]);
    json_check::validate(&json).expect("chrome trace must be valid JSON");
    for track in ["gpu detector", "cpu tracker", "camera"] {
        assert!(json.contains(track), "missing track {track}");
    }
    assert!(json.contains("\"ph\": \"X\""), "no spans exported");
    assert!(json.contains("\"ph\": \"i\""), "no instants exported");

    // The flame report and percentile summary printed by the CLI render
    // from the same log without panicking and mention real span names.
    let flame = telemetry::report::flame_report(&trace.telemetry);
    assert!(flame.contains("detect"), "{flame}");
    let dist = telemetry::distributions([&trace]);
    let p = dist.cycle_ms.percentiles().expect("cycles recorded");
    assert!(p.p50 > 0.0 && p.p50 <= p.p99);

    // The validator itself must reject malformed documents, or the
    // assertion above pins nothing.
    assert!(json_check::validate("{\"a\": [1, 2,]}").is_err());
    assert!(json_check::validate("{\"a\": 1} extra").is_err());
    assert!(json_check::validate("{\"a\": 01e}").is_err());
}

#[test]
fn frame_export_with_pipeline_boxes() {
    let (clip, ev) = run_once();
    // Draw the pipeline's displayed boxes for frame 30 and round-trip it.
    let out = &ev.trace.outputs[30];
    let boxes: Vec<_> = out.boxes.iter().map(|l| (l.bbox, 255u8)).collect();
    let annotated = draw_boxes(&clip.frame(30).image, &boxes);
    let dir = std::env::temp_dir().join("adavp_tooling_pgm");
    let _ = fs::remove_dir_all(&dir);
    let path = dir.join("f30.pgm");
    write_pgm(&annotated, &path).unwrap();
    let back = read_pgm(&path).unwrap();
    assert_eq!(back, annotated);

    // Bulk export runs too.
    let n = export_clip(&clip, &dir, 40).unwrap();
    assert_eq!(n, 3);
    let _ = fs::remove_dir_all(dir);
}

/// The determinism lint (DESIGN.md §13) run as a library over the live
/// workspace: `cargo test -q` alone — the tier-1 gate — fails on any
/// reintroduced wall-clock read, ambient RNG, unordered map in a
/// deterministic crate, missing `#![forbid(unsafe_code)]`, or stale
/// waiver, without needing scripts/ci.sh.
#[test]
fn determinism_lint_passes_on_live_workspace() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let outcome = adavp_lint::lint_workspace(root).expect("adavp-lint runs on the workspace");
    assert!(
        outcome.findings.is_empty(),
        "determinism violations (add a reasoned waiver only if the host \
         read is genuinely by design):\n{}",
        outcome.violation_report()
    );
    let stale: Vec<String> = outcome
        .stale_waivers()
        .iter()
        .map(|w| format!("[{}] {}", w.rule, w.site))
        .collect();
    assert!(stale.is_empty(), "stale waivers, remove them: {stale:?}");
    assert!(
        outcome.files_scanned >= 70,
        "lint walked only {} files",
        outcome.files_scanned
    );
}

/// The flow-aware passes (DESIGN.md §18) as part of the same tier-1 gate:
/// the committed baseline absorbs only the pre-existing index-expression
/// debt, every baseline entry still matches a live finding, and `--fix-check`
/// semantics (no deny findings, no stale waivers, no stale baseline rows)
/// hold without invoking the CLI.
#[test]
fn flow_aware_passes_hold_on_live_workspace() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let baseline = adavp_lint::load_baseline(root).expect("lint.baseline parses");
    assert!(
        baseline.as_ref().is_some_and(|b| !b.entries.is_empty()),
        "lint.baseline should be committed and non-empty"
    );
    let outcome = adavp_lint::lint_workspace_with(root, baseline.as_ref())
        .expect("adavp-lint runs on the workspace");
    assert!(
        outcome.fix_check_ok(),
        "fix-check failed — deny: {}, stale waivers: {}, stale baseline: {}\n{}",
        outcome.deny_findings().len(),
        outcome.stale_waivers().len(),
        outcome.stale_baseline.len(),
        outcome.violation_report()
    );
    assert!(
        outcome.baseline_suppressed > 0,
        "baseline no longer suppresses anything — regenerate or delete it"
    );
    // The machine-readable report is deterministic: no timestamps, stable
    // ordering, so two runs serialize identically byte for byte.
    let again = adavp_lint::lint_workspace_with(root, baseline.as_ref())
        .expect("second lint run");
    assert_eq!(
        outcome.json_report(),
        again.json_report(),
        "--json output must be byte-stable across runs"
    );
}
