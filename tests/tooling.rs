//! Integration tests for the tooling layers: trace analysis, JSON/CSV
//! export, PGM frame export — everything a user consumes downstream of a
//! pipeline run.

use adavp::core::analysis::{analyze, f1_by_source, switch_gaps, usage_shares};
use adavp::core::eval::{evaluate_on_clip, EvalConfig};
use adavp::core::export::{trace_to_json, write_frame_csv, write_trace_json};
use adavp::core::pipeline::{MpdtPipeline, PipelineConfig, SettingPolicy};
use adavp::detector::{DetectorConfig, ModelSetting, SimulatedDetector};
use adavp::video::clip::VideoClip;
use adavp::video::export::{draw_boxes, export_clip, read_pgm, write_pgm};
use adavp::video::scenario::Scenario;
use std::fs;

fn run_once() -> (VideoClip, adavp::core::eval::VideoEvaluation) {
    let mut spec = Scenario::CityStreet.spec();
    spec.width = 240;
    spec.height = 140;
    spec.size_range = (20.0, 36.0);
    let clip = VideoClip::generate("tooling", &spec, 19, 120);
    let mut p = MpdtPipeline::new(
        SimulatedDetector::new(DetectorConfig::default()),
        SettingPolicy::Fixed(ModelSetting::Yolo512),
        PipelineConfig::default(),
    );
    let ev = evaluate_on_clip(&mut p, &clip, &EvalConfig::default());
    (clip, ev)
}

#[test]
fn analysis_of_real_trace_is_consistent() {
    let (_, ev) = run_once();
    let stats = analyze(&ev.trace);
    assert!(stats.cycles > 2);
    assert_eq!(stats.switches, 0, "fixed policy never switches");
    assert!(stats.mean_cycle_ms > 300.0 && stats.mean_cycle_ms < 500.0);
    assert!(stats.mean_buffered >= stats.mean_tracked);
    assert!(stats.tracking_completion() > 0.0 && stats.tracking_completion() <= 1.0);
    let src = stats.frame_sources;
    assert!((src.sum() - 1.0).abs() < 1e-9);
    assert_eq!(src.dropped, 0.0, "no faults configured");
    assert!(stats.usage[2] == stats.cycles, "all cycles at 512");

    // Per-source F1 split covers all frames.
    let (fd, ft, fh) = f1_by_source(&ev.trace, &ev.frame_f1);
    assert!(fd.is_some());
    assert!(ft.is_some() || fh.is_some());

    // No switches → no switch gaps.
    assert!(switch_gaps([&ev.trace]).is_empty());
    let shares = usage_shares([&ev.trace]);
    assert!((shares[2].1 - 1.0).abs() < 1e-9);
}

#[test]
fn json_export_of_real_trace_round_trips_key_fields() {
    let (_, ev) = run_once();
    let json = trace_to_json(&ev.trace, Some(&ev.frame_f1));
    assert!(json.contains("\"pipeline\": \"MPDT-YOLOv3-512\""));
    assert_eq!(
        json.matches("\"index\":").count(),
        ev.trace.outputs.len() + ev.trace.cycles.len()
    );
    // Balanced structure.
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    let dir = std::env::temp_dir().join("adavp_tooling_test");
    let _ = fs::remove_dir_all(&dir);
    write_trace_json(&ev.trace, Some(&ev.frame_f1), &dir.join("trace.json")).unwrap();
    write_frame_csv(&ev.trace, &ev.frame_f1, &dir.join("frames.csv")).unwrap();
    let csv = fs::read_to_string(dir.join("frames.csv")).unwrap();
    assert_eq!(csv.lines().count(), ev.trace.outputs.len() + 1);
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn frame_export_with_pipeline_boxes() {
    let (clip, ev) = run_once();
    // Draw the pipeline's displayed boxes for frame 30 and round-trip it.
    let out = &ev.trace.outputs[30];
    let boxes: Vec<_> = out.boxes.iter().map(|l| (l.bbox, 255u8)).collect();
    let annotated = draw_boxes(&clip.frame(30).image, &boxes);
    let dir = std::env::temp_dir().join("adavp_tooling_pgm");
    let _ = fs::remove_dir_all(&dir);
    let path = dir.join("f30.pgm");
    write_pgm(&annotated, &path).unwrap();
    let back = read_pgm(&path).unwrap();
    assert_eq!(back, annotated);

    // Bulk export runs too.
    let n = export_clip(&clip, &dir, 40).unwrap();
    assert_eq!(n, 3);
    let _ = fs::remove_dir_all(dir);
}
